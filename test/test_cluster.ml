(* Tests for the cluster layer (cgc_cluster): the SPMC work deque under
   concurrent consumers, the persistent domain pool (exactly-once,
   order-identical results at every size, exception propagation at
   every pool size, the par_map registry splicing), the three routing
   policies and the hash ring's failover monotonicity, shard/fleet
   determinism across pool sizes (byte-identical traces and report,
   chaos scenarios included), the fleet degradation ladder's exact
   request conservation and Fleet_unavailable, the per-request blame
   conservation identity across every chaos scenario, and the
   cgcsim-cluster-v3 schema round-trip. *)

module Json = Cgc_prof.Json
module Deque = Cgc_cluster.Deque
module Dpool = Cgc_cluster.Dpool
module Balancer = Cgc_cluster.Balancer
module Cluster = Cgc_cluster.Cluster
module Shard = Cgc_cluster.Shard
module Cluster_report = Cgc_cluster.Report
module Server = Cgc_server.Server
module Span = Cgc_server.Span
module Arrival = Cgc_server.Arrival
module Prng = Cgc_util.Prng
module Common = Cgc_experiments.Common
module Cluster_fault = Cgc_fault.Cluster_fault

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cpm = 550_000 (* Cost.default.cycles_per_ms *)

(* ------------------------------ deque ------------------------------ *)

let test_deque_fifo () =
  let d = Deque.create ~capacity:16 in
  for i = 0 to 9 do
    Deque.push d i
  done;
  check ci "length" 10 (Deque.length d);
  for i = 0 to 9 do
    check (Alcotest.option ci) "fifo order" (Some i) (Deque.take d)
  done;
  check (Alcotest.option ci) "empty" None (Deque.take d)

let test_deque_concurrent_take_once () =
  (* 4 consumer domains race on one deque; every job must be taken
     exactly once. *)
  let n = 10_000 in
  let d = Deque.create ~capacity:(1 lsl 14) in
  for i = 0 to n - 1 do
    Deque.push d i
  done;
  let seen = Array.init n (fun _ -> Atomic.make 0) in
  let taker () =
    let rec go () =
      match Deque.take d with
      | Some job ->
          Atomic.incr seen.(job);
          go ()
      | None -> ()
    in
    go ()
  in
  let doms = List.init 4 (fun _ -> Domain.spawn taker) in
  List.iter Domain.join doms;
  check ci "deque drained" 0 (Deque.length d);
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "job %d taken %d times" i (Atomic.get c))
    seen

(* ------------------------------ dpool ------------------------------ *)

let test_pool_exactly_once () =
  let pool = Dpool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      let n = 1000 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Dpool.run pool ~n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "job %d ran %d times" i (Atomic.get c))
        hits)

let test_pool_exception () =
  let pool = Dpool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      let ran = Array.init 20 (fun _ -> Atomic.make 0) in
      (match
         Dpool.run pool ~n:20 (fun i ->
             Atomic.incr ran.(i);
             if i = 7 then failwith "job 7")
       with
      | () -> Alcotest.fail "expected the job's exception"
      | exception Failure msg -> check Alcotest.string "message" "job 7" msg);
      (* every other job still ran *)
      Array.iter (fun c -> check ci "ran once" 1 (Atomic.get c)) ran)

let qcheck_pool_map_matches_serial =
  QCheck.Test.make
    ~name:"dpool: map result order-identical to serial at any size"
    ~count:60
    QCheck.(triple (int_range 1 8) (int_range 0 64) small_int)
    (fun (domains, n, salt) ->
      let items = Array.init n (fun i -> i + salt) in
      let f x = (x * x) + (x lxor 0x55) in
      let pool = Dpool.create ~domains in
      let got =
        Fun.protect
          ~finally:(fun () -> Dpool.shutdown pool)
          (fun () -> Dpool.map pool f items)
      in
      got = Array.map f items)

let qcheck_par_map_matches_serial =
  (* Common.par_map rides the global pool; output order (and therefore
     every experiment table) must not depend on the pool size. *)
  QCheck.Test.make
    ~name:"par_map: order-identical to List.map at any --jobs" ~count:40
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(0 -- 40) small_int))
    (fun (jobs, items) ->
      Common.set_jobs jobs;
      let f x = (x * 3) + 1 in
      let got =
        Fun.protect
          ~finally:(fun () -> Common.set_jobs 1)
          (fun () -> Common.par_map items f)
      in
      got = List.map f items)

let test_pool_serial_exception_first_in_index_order () =
  (* The serial path must match the parallel contract: every job runs,
     the first exception (index order) is the one re-raised. *)
  let pool = Dpool.create ~domains:1 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      let ran = Array.make 10 false in
      (match
         Dpool.run pool ~n:10 (fun i ->
             ran.(i) <- true;
             if i = 3 then failwith "job 3";
             if i = 7 then failwith "job 7")
       with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          check Alcotest.string "first failing index wins" "job 3" msg);
      Array.iteri
        (fun i r ->
          check cb (Printf.sprintf "job %d still ran" i) true r)
        ran)

let test_pool_usable_after_exception () =
  List.iter
    (fun domains ->
      let pool = Dpool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Dpool.shutdown pool)
        (fun () ->
          (match
             Dpool.run pool ~n:4 (fun i -> if i = 2 then failwith "boom")
           with
          | () -> Alcotest.fail "expected an exception"
          | exception Failure _ -> ());
          let got = Dpool.map pool (fun x -> x * 2) [| 1; 2; 3 |] in
          check (Alcotest.array ci)
            (Printf.sprintf "pool of %d reusable after exception" domains)
            [| 2; 4; 6 |] got))
    [ 1; 4 ]

let test_pool_nested_inline_after_exception () =
  let pool = Dpool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      (match
         Dpool.run pool ~n:8 (fun i -> if i = 0 then failwith "boom")
       with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure _ -> ());
      let outer =
        Dpool.map pool
          (fun i ->
            let inner = Dpool.map pool (fun j -> i * j) [| 1; 2 |] in
            inner.(0) + inner.(1))
          [| 3; 4 |]
      in
      check (Alcotest.array ci) "nested map inline after exception"
        [| 9; 12 |] outer)

let test_pool_nested_runs_inline () =
  let pool = Dpool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      (* An inner map issued from inside a pool job must complete (not
         deadlock) and produce the same values. *)
      let outer =
        Dpool.map pool
          (fun i ->
            let inner = Dpool.map pool (fun j -> i + j) [| 1; 2; 3 |] in
            Array.fold_left ( + ) 0 inner)
          [| 10; 20 |]
      in
      check (Alcotest.array ci) "nested values" [| 36; 66 |] outer)

(* ----------------------------- balancer ----------------------------- *)

let route policy ?(nshards = 4) ?(rng = Prng.create 9) ts =
  Balancer.route policy ~nshards ~workers:4 ~service_est_ms:0.12
    ~cycles_per_ms:cpm ~rng ts

let test_balancer_round_robin () =
  let ts = Array.init 10 (fun i -> i * cpm) in
  check (Alcotest.array ci) "i mod n"
    [| 0; 1; 2; 3; 0; 1; 2; 3; 0; 1 |]
    (route Balancer.Round_robin ts)

let test_balancer_least_queue_low_load () =
  (* Widely spaced arrivals: every modelled queue drains to zero, so
     the round-robin tie-break must spread them uniformly. *)
  let ts = Array.init 12 (fun i -> i * cpm) in
  check (Alcotest.array ci) "ties spread round-robin"
    [| 0; 1; 2; 3; 0; 1; 2; 3; 0; 1; 2; 3 |]
    (route Balancer.Least_queue ts)

let test_balancer_least_queue_balances_burst () =
  (* Simultaneous arrivals never drain between assignments: join-the-
     shortest-queue must keep the modelled depths within one of each
     other. *)
  let assign = route Balancer.Least_queue (Array.make 1000 0) in
  let counts = Array.make 4 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) assign;
  Array.iter (fun c -> check ci "even split" 250 c) counts

let test_balancer_hash_properties () =
  let ts = Array.init 4000 (fun i -> i * 1000) in
  let a1 = route Balancer.Consistent_hash ~rng:(Prng.create 9) ts in
  let a2 = route Balancer.Consistent_hash ~rng:(Prng.create 9) ts in
  check cb "same key stream, same assignment" true (a1 = a2);
  let a3 = route Balancer.Consistent_hash ~rng:(Prng.create 10) ts in
  check cb "different key stream differs" true (a1 <> a3);
  let counts = Array.make 4 0 in
  Array.iter
    (fun s ->
      check cb "in range" true (s >= 0 && s < 4);
      counts.(s) <- counts.(s) + 1)
    a1;
  Array.iter
    (fun c ->
      (* 64 vnodes per shard keeps the skew bounded: no shard owns less
         than ~5% or more than ~60% of a uniform key stream. *)
      check cb "no starved shard" true (c > 200);
      check cb "no hot shard owning most keys" true (c < 2400))
    counts

let qcheck_ring_remaps_only_failed_shard =
  (* Consistent hashing's failover contract: taking one shard out moves
     only the keys that shard owned (nothing else re-shuffles), and
     putting it back restores the exact prior assignment. *)
  QCheck.Test.make
    ~name:"hash ring: removing a shard remaps only its keys; re-add restores"
    ~count:60
    QCheck.(triple (int_range 2 10) (int_range 0 9) small_int)
    (fun (nshards, victim, salt) ->
      QCheck.assume (victim < nshards);
      let all = Array.make nshards true in
      let without = Array.init nshards (fun k -> k <> victim) in
      let ring_all = Balancer.ring_points ~nshards ~live:all in
      let ring_cut = Balancer.ring_points ~nshards ~live:without in
      let ring_back = Balancer.ring_points ~nshards ~live:all in
      let keys =
        Array.init 400 (fun i ->
            Balancer.mix64 (Int64.of_int ((i * 7919) + salt + 1)))
      in
      Array.for_all
        (fun key ->
          let before = Balancer.ring_lookup ring_all key in
          let after = Balancer.ring_lookup ring_cut key in
          after <> victim
          && (before = victim || after = before)
          && Balancer.ring_lookup ring_back key = before)
        keys)

(* ------------------------- shard determinism ------------------------ *)

let small_cfg ?(trace = false) () =
  Cluster.cfg ~shards:3 ~policy:Balancer.Least_queue ~rate_per_s:6000.0
    ~slo_ms:50.0 ~heap_mb:16.0 ~ms:300.0 ~trace ~trace_ring:(1 lsl 17) ()

let test_cluster_determinism_across_pool_sizes () =
  let run domains =
    let pool = Dpool.create ~domains in
    Fun.protect
      ~finally:(fun () -> Dpool.shutdown pool)
      (fun () -> Cluster.run ~pool (small_cfg ~trace:true ()))
  in
  let r1 = run 1 and r8 = run 8 in
  check Alcotest.string "fleet report byte-identical at 1 vs 8 domains"
    (Json.to_string ~pretty:true (Cluster_report.to_json r1))
    (Json.to_string ~pretty:true (Cluster_report.to_json r8));
  Array.iteri
    (fun k (s1 : Shard.result) ->
      let s8 = r8.Cluster.shards.(k) in
      check ci "dropped events" 0 s1.Shard.dropped;
      match (s1.Shard.trace, s8.Shard.trace) with
      | Some t1, Some t8 ->
          check cb
            (Printf.sprintf "shard %d trace byte-identical" k)
            true (t1 = t8)
      | _ -> Alcotest.fail "expected traces on both runs")
    r1.Cluster.shards

let test_cluster_conservation () =
  let r = Cluster.run (small_cfg ()) in
  let tot = Cluster.fleet_totals r in
  let routed =
    Array.fold_left (fun acc s -> acc + s.Shard.routed) 0 r.Cluster.shards
  in
  check cb "every arrival routed to some shard" true (routed > 0);
  (* A shard's server sees exactly the arrivals it was routed, except
     possibly ones scripted at the very end of the horizon. *)
  check cb "arrived <= routed" true (tot.Server.arrived <= routed);
  check cb "arrived nearly routed" true
    (routed - tot.Server.arrived <= 3 * r.Cluster.cfg.Cluster.shards);
  check ci "admitted = arrived - shed"
    (tot.Server.arrived - tot.Server.shed_full - tot.Server.shed_throttled)
    tot.Server.admitted;
  check cb "attainment in [0,1]" true
    (let a = Cluster.slo_attainment r in
     a >= 0.0 && a <= 1.0)

let test_cluster_policies_share_arrival_stream () =
  (* The arrival stream is drawn before routing: every policy must see
     the same fleet arrival count. *)
  let arrived policy =
    let cfg =
      Cluster.cfg ~shards:2 ~policy ~rate_per_s:4000.0 ~heap_mb:16.0
        ~ms:200.0 ()
    in
    Array.fold_left
      (fun acc (s : Shard.result) -> acc + s.Shard.routed)
      0 (Cluster.run cfg).Cluster.shards
  in
  let rr = arrived Balancer.Round_robin in
  check ci "least-queue same stream" rr (arrived Balancer.Least_queue);
  check ci "consistent-hash same stream" rr
    (arrived Balancer.Consistent_hash)

(* ------------------------------- chaos ------------------------------ *)

let chaos_cfg ?(trace = false) ?chaos () =
  Cluster.cfg ~shards:3 ~policy:Balancer.Least_queue ~rate_per_s:6000.0
    ~slo_ms:50.0 ~heap_mb:16.0 ~ms:300.0 ~trace ~trace_ring:(1 lsl 17)
    ?chaos ()

let test_chaos_determinism_across_pool_sizes () =
  List.iter
    (fun sc ->
      let name = Cluster_fault.to_name sc in
      let run domains =
        let pool = Dpool.create ~domains in
        Fun.protect
          ~finally:(fun () -> Dpool.shutdown pool)
          (fun () -> Cluster.run ~pool (chaos_cfg ~trace:true ~chaos:sc ()))
      in
      let r1 = run 1 and r8 = run 8 in
      check Alcotest.string
        (name ^ ": fleet report byte-identical at 1 vs 8 domains")
        (Json.to_string ~pretty:true (Cluster_report.to_json r1))
        (Json.to_string ~pretty:true (Cluster_report.to_json r8));
      check ci (name ^ ": same incarnation count")
        (Array.length r1.Cluster.shards)
        (Array.length r8.Cluster.shards);
      Array.iteri
        (fun k (s1 : Shard.result) ->
          let s8 = r8.Cluster.shards.(k) in
          match (s1.Shard.trace, s8.Shard.trace) with
          | Some t1, Some t8 ->
              check cb
                (Printf.sprintf "%s: shard %d.r%d trace byte-identical" name
                   s1.Shard.id s1.Shard.incarnation)
                true (t1 = t8)
          | _ -> Alcotest.fail "expected traces on both runs")
        r1.Cluster.shards)
    Cluster_fault.all

let test_chaos_exact_conservation () =
  (* The ladder's books must balance exactly under every scenario:
     drawn = routed + fleet-shed + unroutable, and every routed request
     is accounted for down to the incarnation that held it. *)
  List.iter
    (fun chaos ->
      let name =
        match chaos with
        | None -> "none"
        | Some sc -> Cluster_fault.to_name sc
      in
      let r = Cluster.run (chaos_cfg ?chaos ()) in
      let tot = Cluster.fleet_totals r in
      let c = r.Cluster.chaos in
      let routed =
        Array.fold_left
          (fun acc s -> acc + s.Shard.routed)
          0 r.Cluster.shards
      in
      check ci
        (name ^ ": drawn = routed + fleet-shed + unroutable")
        c.Cluster.drawn
        (routed + c.Cluster.shed_fleet + c.Cluster.lost_unroutable);
      check ci
        (name ^ ": arrived = routed - unarrived")
        tot.Server.arrived
        (routed - Cluster.unarrived r);
      check ci
        (name ^ ": admitted = arrived - sheds")
        tot.Server.admitted
        (tot.Server.arrived - tot.Server.shed_full
       - tot.Server.shed_throttled);
      let unfinished =
        Array.fold_left
          (fun acc s -> acc + s.Shard.unfinished)
          0 r.Cluster.shards
      in
      check ci
        (name ^ ": admitted = completed + timed-out + unfinished")
        tot.Server.admitted
        (tot.Server.completed + tot.Server.timed_out + unfinished);
      check cb (name ^ ": unarrived non-negative") true
        (Cluster.unarrived r >= 0);
      check cb (name ^ ": lost-in-crash non-negative") true
        (Cluster.lost_crashed r >= 0);
      check cb (name ^ ": availability in [0,1]") true
        (let a = Cluster.availability r in
         a >= 0.0 && a <= 1.0))
    (None :: List.map Option.some Cluster_fault.all)

let test_chaos_epoch_digests () =
  let r0 = Cluster.run (chaos_cfg ()) in
  let d0 = r0.Cluster.chaos.Cluster.digests in
  check cb "digests cover the run" true (Array.length d0 > 0);
  check cb "chaos off: routing table never changes" true
    (Array.for_all (fun d -> d = d0.(0)) d0);
  check cb "chaos off: no time-to-recover" true
    (r0.Cluster.chaos.Cluster.ttr_ms = None);
  let r =
    Cluster.run (chaos_cfg ~chaos:Cluster_fault.Shard_restart ())
  in
  let c = r.Cluster.chaos in
  let distinct =
    List.length (List.sort_uniq compare (Array.to_list c.Cluster.digests))
  in
  check cb "restart: routing table changes" true (distinct >= 2);
  check cb "restart: live count dips" true
    (Array.exists
       (fun l -> l < r.Cluster.cfg.Cluster.shards)
       c.Cluster.live_epochs);
  check cb "restart: recovers (ttr present)" true (c.Cluster.ttr_ms <> None)

let qcheck_blame_conservation_under_chaos =
  (* The tentpole identity, adversarially: for every chaos scenario and
     a sampled (seed, rate), the fleet-merged span summary must balance
     exactly — blame components sum to e2e in aggregate and for every
     retained span, with one span per completed request.  (The runtime
     additionally asserts the identity per request as each completes.) *)
  QCheck.Test.make ~name:"blame conservation under every chaos scenario"
    ~count:12
    QCheck.(
      pair (int_range 1 1000)
        (pair (int_range 0 (List.length Cluster_fault.all))
           (int_range 4 8)))
    (fun (seed, (sc_idx, rate_k)) ->
      let chaos =
        if sc_idx = 0 then None
        else List.nth_opt Cluster_fault.all (sc_idx - 1)
      in
      let cfg =
        Cluster.cfg ~shards:3 ~policy:Balancer.Least_queue
          ~rate_per_s:(float_of_int (rate_k * 1000))
          ~slo_ms:50.0 ~heap_mb:16.0 ~ms:250.0 ~seed ?chaos ()
      in
      let r = Cluster.run cfg in
      let tot = Cluster.fleet_totals r in
      let sp = tot.Server.spans in
      sp.Span.count = tot.Server.completed
      && Span.blame_total sp.Span.sum = sp.Span.sum_e2e
      && List.for_all
           (fun (s : Span.t) ->
             Span.blame_total s.Span.blame = Span.e2e_cycles s)
           sp.Span.worst
      && List.for_all
           (fun ((_, s) : int * Span.t) ->
             Span.blame_total s.Span.blame = Span.e2e_cycles s)
           sp.Span.exemplars)

let test_chaos_routes_annotated () =
  (* Under shard-restart the ladder retries/redirects; the surviving
     spans must carry that history: some worst/exemplar span shows a
     retry or a redirect, and every epoch stamp is within range. *)
  let r = Cluster.run (chaos_cfg ~chaos:Cluster_fault.Shard_restart ()) in
  let sp = (Cluster.fleet_totals r).Server.spans in
  let spans = sp.Span.worst @ List.map snd sp.Span.exemplars in
  check cb "spans retained" true (spans <> []);
  let epochs = Array.length r.Cluster.chaos.Cluster.live_epochs in
  List.iter
    (fun (s : Span.t) ->
      let ro = s.Span.route in
      check cb "shard in range" true
        (ro.Span.shard >= 0 && ro.Span.shard < r.Cluster.cfg.Cluster.shards);
      check cb "epoch in range" true
        (ro.Span.epoch >= 0 && ro.Span.epoch < max 1 epochs);
      check cb "attempts non-negative" true (ro.Span.attempts >= 0))
    spans;
  check cb "some span rerouted or retried" true
    (List.exists
       (fun (s : Span.t) ->
         s.Span.route.Span.attempts > 0
         || s.Span.route.Span.shard <> s.Span.route.Span.first)
       spans)

let test_fleet_unavailable_raises () =
  (* A single-shard fleet whose only shard crashes has nowhere to
     reroute: the ladder must bottom out in the typed failure. *)
  let cfg =
    Cluster.cfg ~shards:1 ~rate_per_s:4000.0 ~heap_mb:16.0 ~ms:300.0
      ~chaos:Cluster_fault.Shard_crash ~give_up:10 ()
  in
  match Cluster.run cfg with
  | _ -> Alcotest.fail "expected Fleet_unavailable"
  | exception Cluster.Fleet_unavailable u ->
      check Alcotest.string "scenario named" "shard-crash"
        u.Cluster.scenario;
      check ci "fleet size recorded" 1 u.Cluster.of_shards;
      check cb "lost at least the give-up budget" true (u.Cluster.lost >= 10);
      check cb "diagnostic renders" true
        (String.length (Cluster.unavailable_to_string u) > 0)

(* ------------------------------ report ------------------------------ *)

let test_report_schema_roundtrip () =
  let r = Cluster.run (small_cfg ()) in
  let s = Json.to_string ~pretty:true (Cluster_report.to_json r) in
  (match Cluster_report.validate s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "round-trip rejected: %s" e);
  (match Cluster_report.validate "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing schema accepted");
  (match Cluster_report.validate "{\"schema\": \"cgcsim-server-v1\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  (* corrupting one blame component must break the conservation check *)
  let key = "\"serviceCycles\": " in
  let klen = String.length key in
  let corrupt =
    let rec find i =
      if i + klen > String.length s then None
      else if String.sub s i klen = key then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i ->
        let j = ref (i + klen) in
        while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        String.sub s 0 (i + klen)
        ^ "1234567891"
        ^ String.sub s !j (String.length s - !j)
  in
  check cb "report carries a serviceCycles field" true (corrupt <> s);
  match Cluster_report.validate corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "broken conservation accepted"

let test_report_phenomena_counts () =
  let r = Cluster.run (small_cfg ()) in
  let ph = Cluster_report.phenomena r in
  check cb "bins cover the run" true (ph.Cluster_report.bins >= 30);
  check cb "co-stopped bounded by shards" true
    (ph.Cluster_report.co_max_stopped <= r.Cluster.cfg.Cluster.shards);
  let tot = Cluster.fleet_totals r in
  check ci "binned sheds equal counter"
    (tot.Server.shed_full + tot.Server.shed_throttled)
    ph.Cluster_report.shed_total

(* ----------------------------- scripted ----------------------------- *)

let test_scripted_arrivals () =
  let a = Arrival.scripted [| 5; 5; 9 |] in
  check ci "first" 5 (Arrival.next a);
  check ci "equal timestamps fine" 5 (Arrival.next a);
  check ci "third" 9 (Arrival.next a);
  check ci "exhausted" max_int (Arrival.next a);
  check cb "decreasing rejected" true
    (match Arrival.scripted [| 3; 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cluster"
    [
      ( "deque",
        [
          Alcotest.test_case "fifo" `Quick test_deque_fifo;
          Alcotest.test_case "concurrent take exactly once" `Quick
            test_deque_concurrent_take_once;
        ] );
      ( "dpool",
        [
          Alcotest.test_case "exactly once" `Quick test_pool_exactly_once;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "serial exception: first in index order"
            `Quick test_pool_serial_exception_first_in_index_order;
          Alcotest.test_case "usable after exception" `Quick
            test_pool_usable_after_exception;
          Alcotest.test_case "nested inline after exception" `Quick
            test_pool_nested_inline_after_exception;
          Alcotest.test_case "nested runs inline" `Quick
            test_pool_nested_runs_inline;
          q qcheck_pool_map_matches_serial;
          q qcheck_par_map_matches_serial;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "round-robin exact" `Quick
            test_balancer_round_robin;
          Alcotest.test_case "least-queue low load" `Quick
            test_balancer_least_queue_low_load;
          Alcotest.test_case "least-queue burst balance" `Quick
            test_balancer_least_queue_balances_burst;
          Alcotest.test_case "consistent-hash properties" `Quick
            test_balancer_hash_properties;
          q qcheck_ring_remaps_only_failed_shard;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "determinism across pool sizes" `Slow
            test_cluster_determinism_across_pool_sizes;
          Alcotest.test_case "conservation" `Quick test_cluster_conservation;
          Alcotest.test_case "policies share arrival stream" `Quick
            test_cluster_policies_share_arrival_stream;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "determinism across pool sizes" `Slow
            test_chaos_determinism_across_pool_sizes;
          Alcotest.test_case "exact conservation" `Quick
            test_chaos_exact_conservation;
          q qcheck_blame_conservation_under_chaos;
          Alcotest.test_case "routes annotated" `Quick
            test_chaos_routes_annotated;
          Alcotest.test_case "epoch digests" `Quick
            test_chaos_epoch_digests;
          Alcotest.test_case "fleet unavailable" `Quick
            test_fleet_unavailable_raises;
        ] );
      ( "report",
        [
          Alcotest.test_case "schema round-trip" `Quick
            test_report_schema_roundtrip;
          Alcotest.test_case "phenomena counts" `Quick
            test_report_phenomena_counts;
        ] );
      ( "scripted",
        [ Alcotest.test_case "scripted arrivals" `Quick test_scripted_arrivals ] );
    ]
