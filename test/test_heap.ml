(* Tests for the heap substrate: arena/object model, free list, allocation
   bits, card table, allocation caches and card-object iteration. *)

module Machine = Cgc_smp.Machine
module Arena = Cgc_heap.Arena
module Freelist = Cgc_heap.Freelist
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Heap = Cgc_heap.Heap
module Bitvec = Cgc_util.Bitvec

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let mk_arena ?(nslots = 4096) () = Arena.create (Machine.testing ()) ~nslots

(* ------------------------------ Arena ------------------------------ *)

let test_header_roundtrip () =
  let a = mk_arena () in
  Arena.write_header a 100 ~size:17 ~nrefs:5;
  check ci "size" 17 (Arena.size_of a 100);
  check ci "nrefs" 5 (Arena.nrefs_of a 100);
  check cb "valid" true (Arena.header_valid a 100)

let test_header_extremes () =
  let a = mk_arena () in
  Arena.write_header a 1 ~size:2 ~nrefs:0;
  check ci "min size" 2 (Arena.size_of a 1);
  Arena.write_header a 10 ~size:100 ~nrefs:99;
  check ci "max nrefs" 99 (Arena.nrefs_of a 10)

let test_header_invalid_args () =
  let a = mk_arena () in
  Alcotest.check_raises "nrefs too big"
    (Invalid_argument "Arena.write_header: nrefs") (fun () ->
      Arena.write_header a 1 ~size:4 ~nrefs:4);
  Alcotest.check_raises "size zero" (Invalid_argument "Arena.write_header: size")
    (fun () -> Arena.write_header a 1 ~size:0 ~nrefs:0)

let test_header_valid_rejects_garbage () =
  let a = mk_arena () in
  check cb "zero slot invalid" false (Arena.header_valid a 50);
  Arena.write_slot a 51 12345;
  check cb "random int invalid" false (Arena.header_valid a 51)

let test_refs () =
  let a = mk_arena () in
  Arena.write_header a 10 ~size:8 ~nrefs:3;
  Arena.clear_fields a 10 ~size:8 ~nrefs:3;
  check ci "null after clear" 0 (Arena.ref_get a 10 1);
  Arena.ref_set_raw a 10 1 777;
  check ci "ref set" 777 (Arena.ref_get a 10 1)

let test_in_heap () =
  let a = mk_arena ~nslots:100 () in
  check cb "0 is null" false (Arena.in_heap a 0);
  check cb "1 ok" true (Arena.in_heap a 1);
  check cb "99 ok" true (Arena.in_heap a 99);
  check cb "100 out" false (Arena.in_heap a 100);
  check cb "negative out" false (Arena.in_heap a (-5))

let test_card_of_addr () =
  check ci "slot 0" 0 (Arena.card_of_addr 0);
  check ci "slot 63" 0 (Arena.card_of_addr 63);
  check ci "slot 64" 1 (Arena.card_of_addr 64);
  check ci "512 bytes per card" 64 Arena.slots_per_card

(* ------------------------------ Freelist ------------------------------ *)

let test_freelist_basic () =
  let f = Freelist.create () in
  Freelist.add f ~addr:100 ~size:50;
  check ci "free slots" 50 (Freelist.free_slots f);
  (match Freelist.alloc f 20 with
  | Some a -> check ci "allocates from chunk" 100 a
  | None -> Alcotest.fail "alloc failed");
  check ci "remainder kept" 30 (Freelist.free_slots f)

let test_freelist_exhaustion () =
  let f = Freelist.create () in
  Freelist.add f ~addr:10 ~size:16;
  check cb "too big fails" true (Freelist.alloc f 17 = None);
  check cb "exact fits" true (Freelist.alloc f 16 <> None);
  check cb "now empty" true (Freelist.alloc f 1 = None)

let test_freelist_dark_matter () =
  let f = Freelist.create () in
  Freelist.add f ~addr:10 ~size:2;
  check ci "small chunk dropped" 0 (Freelist.free_slots f);
  check ci "dark matter counted" 2 (Freelist.dark_matter f)

let test_freelist_alloc_range () =
  let f = Freelist.create () in
  Freelist.add f ~addr:100 ~size:1000;
  (match Freelist.alloc_range f ~min:10 ~pref:256 with
  | Some (a, s) ->
      check ci "addr" 100 a;
      check ci "pref size" 256 s
  | None -> Alcotest.fail "range alloc failed");
  check ci "remainder" 744 (Freelist.free_slots f);
  match Freelist.alloc_range f ~min:600 ~pref:800 with
  | Some (_, s) -> check ci "whole chunk when < pref" 744 s
  | None -> Alcotest.fail "range alloc 2 failed"

let test_freelist_clear () =
  let f = Freelist.create () in
  Freelist.add f ~addr:10 ~size:100;
  Freelist.clear f;
  check ci "cleared" 0 (Freelist.free_slots f);
  check ci "chunks" 0 (Freelist.chunk_count f)

(* Property: allocations never overlap and stay within added chunks. *)
let freelist_no_overlap =
  QCheck.Test.make ~name:"freelist allocations never overlap" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 64))
    (fun sizes ->
      let f = Freelist.create () in
      Freelist.add f ~addr:1 ~size:10_000;
      let taken = Hashtbl.create 64 in
      List.for_all
        (fun size ->
          match Freelist.alloc f size with
          | None -> true
          | Some a ->
              if a < 1 || a + size > 10_001 then false
              else begin
                let ok = ref true in
                for i = a to a + size - 1 do
                  if Hashtbl.mem taken i then ok := false
                  else Hashtbl.replace taken i ()
                done;
                !ok
              end)
        sizes)

let freelist_accounting =
  QCheck.Test.make ~name:"free_slots equals sum of chunks" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 1 100) (int_range 4 64)))
    (fun chunks ->
      let f = Freelist.create () in
      (* non-overlapping chunks at stride 200 *)
      List.iteri
        (fun i (_, size) -> Freelist.add f ~addr:(1 + (i * 200)) ~size)
        chunks;
      let total = ref 0 in
      Freelist.iter f (fun ~addr:_ ~size -> total := !total + size);
      !total = Freelist.free_slots f)

(* --------------------------- Alloc bits --------------------------- *)

let test_alloc_bits () =
  let m = Machine.testing () in
  let b = Alloc_bits.create m ~nslots:256 in
  Alloc_bits.set b 10;
  Alloc_bits.set b 100;
  check cb "set" true (Alloc_bits.is_set b 10);
  check cb "sc view" true (Alloc_bits.is_set_sc b 10);
  check ci "next_set" 10 (Alloc_bits.next_set b 0);
  check ci "prev_set" 100 (Alloc_bits.prev_set b 255);
  Alloc_bits.clear_range b 0 64;
  check cb "cleared by range" false (Alloc_bits.is_set b 10);
  check cb "outside range survives" true (Alloc_bits.is_set b 100)

(* --------------------------- Card table --------------------------- *)

let test_card_table () =
  let m = Machine.testing () in
  let ct = Card_table.create m ~ncards:64 in
  check ci "initially clean" 0 (Card_table.dirty_count ct);
  Card_table.dirty ct 5;
  Card_table.dirty ct 20;
  Card_table.dirty ct 5;
  check ci "two dirty" 2 (Card_table.dirty_count ct);
  check cb "is_dirty" true (Card_table.is_dirty ct 5);
  Card_table.clear ct 5;
  check cb "cleared" false (Card_table.is_dirty ct 5)

let test_card_snapshot () =
  let m = Machine.testing () in
  let ct = Card_table.create m ~ncards:64 in
  Card_table.dirty ct 3;
  Card_table.dirty ct 40;
  Card_table.dirty ct 12;
  let cards = Card_table.snapshot ct in
  check (Alcotest.list Alcotest.int) "registered ascending" [ 3; 12; 40 ] cards;
  check ci "indicators cleared" 0 (Card_table.dirty_count ct);
  check (Alcotest.list Alcotest.int) "second snapshot empty" []
    (Card_table.snapshot ct)

let test_card_clear_all () =
  let m = Machine.testing () in
  let ct = Card_table.create m ~ncards:16 in
  for i = 0 to 15 do
    Card_table.dirty ct i
  done;
  Card_table.clear_all ct;
  check ci "all clean" 0 (Card_table.dirty_count ct)

let test_card_counter_matches_recount () =
  (* The O(1) incremental dirty counter must track a committed-byte
     rescan through any interleaving of redundant dirties, clears of
     clean cards, snapshots and resets. *)
  let m = Machine.testing () in
  let ct = Card_table.create m ~ncards:128 in
  for k = 0 to 999 do
    let i = k * 13 mod 128 in
    if k mod 3 = 0 then Card_table.clear ct i else Card_table.dirty ct i;
    if Card_table.dirty_count ct <> Card_table.recount ct then
      Alcotest.failf "counter %d <> recount %d after op %d"
        (Card_table.dirty_count ct) (Card_table.recount ct) k
  done;
  ignore (Card_table.snapshot ct);
  check ci "clean after snapshot" 0 (Card_table.dirty_count ct);
  check ci "recount agrees" 0 (Card_table.recount ct);
  Card_table.dirty ct 7;
  Card_table.clear_all ct;
  check ci "clean after clear_all" 0 (Card_table.dirty_count ct);
  check ci "recount agrees after clear_all" 0 (Card_table.recount ct)

let test_card_snapshot_relaxed () =
  (* Under the Relaxed weak-memory model the snapshot has two paths: the
     exact byte-loop fallback while stores are in flight, and the
     word-scan fast path once everything has committed.  Both must leave
     the incremental counter agreeing with a committed rescan, and the
     fast path must register the same ascending card list Sc mode
     would. *)
  let m, clock, _cpu =
    Machine.testing_multi ~mode:Cgc_smp.Weakmem.Relaxed ~seed:11 ()
  in
  let ct = Card_table.create m ~ncards:64 in
  List.iter (Card_table.dirty ct) [ 3; 40; 12; 63 ];
  check ci "counter sees committed bytes" 4 (Card_table.dirty_count ct);
  check ci "recount agrees" 4 (Card_table.recount ct);
  (* Stores may still be in flight: whatever subset this snapshot
     registers, counter and rescan must agree afterwards. *)
  let first = Card_table.snapshot ct in
  check ci "counter = recount after in-flight snapshot"
    (Card_table.recount ct) (Card_table.dirty_count ct);
  (* Commit everything; a second snapshot (fast path) must register
     every card the first one missed, in ascending order. *)
  clock := !clock + 10_000_000;
  let second = Card_table.snapshot ct in
  let all = List.sort_uniq compare (first @ second) in
  check (Alcotest.list Alcotest.int) "every card registered exactly once"
    [ 3; 12; 40; 63 ] all;
  check ci "registered count" 4 (List.length first + List.length second);
  check cb "second snapshot ascending" true
    (second = List.sort compare second);
  check ci "clean afterwards" 0 (Card_table.dirty_count ct);
  check ci "recount clean too" 0 (Card_table.recount ct)

(* ------------------------------ Heap ------------------------------ *)

let mk_heap ?(nslots = 65536) ?fence_policy () =
  Heap.create ?fence_policy (Machine.testing ()) ~nslots

let test_cache_alloc_publishes_lazily () =
  let h = mk_heap () in
  let c = Heap.new_cache () in
  check cb "refill" true (Heap.refill_cache h c ~min:8 ~pref:256);
  let addr =
    match Heap.cache_alloc h c ~size:8 ~nrefs:2 ~mark_new:false with
    | Some a -> a
    | None -> Alcotest.fail "cache alloc failed"
  in
  check cb "allocation bit NOT yet set (batched)" false
    (Alloc_bits.is_set_sc (Heap.alloc_bits h) addr);
  Heap.retire_cache h c;
  check cb "allocation bit set after retire" true
    (Alloc_bits.is_set_sc (Heap.alloc_bits h) addr);
  let m = Heap.machine h in
  check cb "one batched fence" true
    (Cgc_smp.Fence.get m.Machine.fences Cgc_smp.Fence.Alloc_batch >= 1)

let test_cache_alloc_naive_policy () =
  let h = mk_heap ~fence_policy:Heap.Naive () in
  let c = Heap.new_cache () in
  ignore (Heap.refill_cache h c ~min:8 ~pref:256);
  let addr =
    match Heap.cache_alloc h c ~size:8 ~nrefs:0 ~mark_new:false with
    | Some a -> a
    | None -> Alcotest.fail "alloc failed"
  in
  check cb "bit set immediately under naive policy" true
    (Alloc_bits.is_set_sc (Heap.alloc_bits h) addr);
  let m = Heap.machine h in
  check cb "naive fence per object" true
    (Cgc_smp.Fence.get m.Machine.fences Cgc_smp.Fence.Naive_alloc >= 1)

let test_cache_exhaustion () =
  let h = mk_heap () in
  let c = Heap.new_cache () in
  ignore (Heap.refill_cache h c ~min:8 ~pref:64);
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.cache_alloc h c ~size:8 ~nrefs:0 ~mark_new:false with
    | Some _ -> incr count
    | None -> continue := false
  done;
  check ci "8 objects of 8 slots in a 64-slot cache" 8 !count

let test_mark_new () =
  let h = mk_heap () in
  let c = Heap.new_cache () in
  ignore (Heap.refill_cache h c ~min:8 ~pref:256);
  let a =
    match Heap.cache_alloc h c ~size:8 ~nrefs:0 ~mark_new:true with
    | Some a -> a
    | None -> Alcotest.fail "alloc"
  in
  check cb "allocated black" true (Heap.is_marked h a)

let test_alloc_large () =
  let h = mk_heap () in
  match Heap.alloc_large h ~size:1000 ~nrefs:10 ~mark_new:false with
  | None -> Alcotest.fail "large alloc failed"
  | Some a ->
      check cb "bit set immediately" true
        (Alloc_bits.is_set_sc (Heap.alloc_bits h) a);
      check ci "size recorded" 1000 (Arena.size_of (Heap.arena h) a)

let test_free_slots_decrease () =
  let h = mk_heap ~nslots:4096 () in
  let before = Heap.free_slots h in
  ignore (Heap.alloc_large h ~size:500 ~nrefs:0 ~mark_new:false);
  check ci "free decreased" (before - 500) (Heap.free_slots h);
  check ci "cumulative counted" 500 (Heap.cumulative_alloc_slots h)

let test_heap_oom () =
  let h = mk_heap ~nslots:1024 () in
  check cb "too big fails" true
    (Heap.alloc_large h ~size:2000 ~nrefs:0 ~mark_new:false = None)

let test_object_overlapping () =
  let h = mk_heap () in
  match Heap.alloc_large h ~size:200 ~nrefs:0 ~mark_new:false with
  | None -> Alcotest.fail "alloc"
  | Some a -> (
      (match Heap.object_overlapping h (a + 100) with
      | Some a' -> check ci "found spanning object" a a'
      | None -> Alcotest.fail "not found");
      match Heap.object_overlapping h (a + 500) with
      | Some a' -> check cb "past the end" true (a' <> a)
      | None -> ())

let test_iter_marked_on_card () =
  let h = mk_heap () in
  (* allocate several objects; mark some; check card iteration *)
  let c = Heap.new_cache () in
  ignore (Heap.refill_cache h c ~min:8 ~pref:512);
  let addrs = ref [] in
  for _ = 1 to 20 do
    match Heap.cache_alloc h c ~size:16 ~nrefs:0 ~mark_new:false with
    | Some a -> addrs := a :: !addrs
    | None -> Alcotest.fail "alloc"
  done;
  Heap.retire_cache h c;
  let addrs = Array.of_list (List.rev !addrs) in
  ignore (Heap.mark_test_and_set h addrs.(0));
  ignore (Heap.mark_test_and_set h addrs.(5));
  ignore (Heap.mark_test_and_set h addrs.(10));
  let found = ref [] in
  let cards =
    List.sort_uniq compare
      (List.map Arena.card_of_addr [ addrs.(0); addrs.(5); addrs.(10) ])
  in
  List.iter
    (fun card -> Heap.iter_marked_on_card h card (fun a -> found := a :: !found))
    cards;
  List.iter
    (fun a ->
      check cb
        (Printf.sprintf "marked object %d found" a)
        true
        (List.mem a !found))
    [ addrs.(0); addrs.(5); addrs.(10) ];
  check cb "unmarked not reported" false (List.mem addrs.(3) !found)

let test_mark_test_and_set () =
  let h = mk_heap () in
  check cb "first marks" true (Heap.mark_test_and_set h 77);
  check cb "second does not" false (Heap.mark_test_and_set h 77);
  Heap.clear_marks h;
  check cb "cleared" false (Heap.is_marked h 77)

let () =
  Alcotest.run "heap"
    [
      ( "arena",
        [
          Alcotest.test_case "header roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "header extremes" `Quick test_header_extremes;
          Alcotest.test_case "header invalid args" `Quick test_header_invalid_args;
          Alcotest.test_case "garbage headers rejected" `Quick
            test_header_valid_rejects_garbage;
          Alcotest.test_case "refs" `Quick test_refs;
          Alcotest.test_case "in_heap" `Quick test_in_heap;
          Alcotest.test_case "card_of_addr" `Quick test_card_of_addr;
        ] );
      ( "freelist",
        [
          Alcotest.test_case "basic" `Quick test_freelist_basic;
          Alcotest.test_case "exhaustion" `Quick test_freelist_exhaustion;
          Alcotest.test_case "dark matter" `Quick test_freelist_dark_matter;
          Alcotest.test_case "alloc_range" `Quick test_freelist_alloc_range;
          Alcotest.test_case "clear" `Quick test_freelist_clear;
          QCheck_alcotest.to_alcotest freelist_no_overlap;
          QCheck_alcotest.to_alcotest freelist_accounting;
        ] );
      ("alloc-bits", [ Alcotest.test_case "basic" `Quick test_alloc_bits ]);
      ( "card-table",
        [
          Alcotest.test_case "dirty/clean" `Quick test_card_table;
          Alcotest.test_case "snapshot protocol" `Quick test_card_snapshot;
          Alcotest.test_case "clear_all" `Quick test_card_clear_all;
          Alcotest.test_case "incremental counter = recount" `Quick
            test_card_counter_matches_recount;
          Alcotest.test_case "snapshot under relaxed memory" `Quick
            test_card_snapshot_relaxed;
        ] );
      ( "heap",
        [
          Alcotest.test_case "batched publication" `Quick
            test_cache_alloc_publishes_lazily;
          Alcotest.test_case "naive fence policy" `Quick
            test_cache_alloc_naive_policy;
          Alcotest.test_case "cache exhaustion" `Quick test_cache_exhaustion;
          Alcotest.test_case "allocate black" `Quick test_mark_new;
          Alcotest.test_case "large objects" `Quick test_alloc_large;
          Alcotest.test_case "free accounting" `Quick test_free_slots_decrease;
          Alcotest.test_case "oom" `Quick test_heap_oom;
          Alcotest.test_case "object_overlapping" `Quick test_object_overlapping;
          Alcotest.test_case "iter_marked_on_card" `Quick
            test_iter_marked_on_card;
          Alcotest.test_case "mark test-and-set" `Quick test_mark_test_and_set;
        ] );
    ]
