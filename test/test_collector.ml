(* End-to-end collector tests: both collector modes on live VMs, data
   integrity across many cycles, metering formula behaviour, allocate-
   black, floating garbage, lazy sweep, out-of-memory, determinism. *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Metering = Cgc_core.Metering
module Gstats = Cgc_core.Gstats
module Tracer = Cgc_core.Tracer
module Stats = Cgc_util.Stats
module Hist = Cgc_util.Histogram
module Objgraph = Cgc_workloads.Objgraph

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* A churn worker: keeps several resident lists (a bushy-enough graph for
   tracing to parallelise), replaces their heads, allocates transients.
   Validates its resident lists periodically. *)
let n_lists = 8

let churn_worker ?(resident = 1500) ?(node = 12) ?(validate = true) () m =
  (* roots 0..7: resident list heads; 8: transient chain; 9,10: pins *)
  let per_list = max 1 (resident / n_lists) in
  for i = 0 to n_lists - 1 do
    let head = Objgraph.build_list m ~len:per_list ~node_slots:node in
    Mutator.root_set m i head
  done;
  let tx = ref 0 in
  while not (Mutator.stopped m) do
    incr tx;
    (* transient chain *)
    let prev = ref 0 in
    for _ = 1 to 6 do
      let o = Mutator.alloc m ~nrefs:1 ~size:8 in
      if !prev <> 0 then Mutator.set_ref m o 0 !prev;
      prev := o;
      Mutator.root_set m 8 o
    done;
    (* replace a resident head, preserving length *)
    let li = !tx mod n_lists in
    let old = Mutator.root_get m li in
    let tail = Mutator.get_ref m old 0 in
    Mutator.root_set m 9 tail;
    let fresh = Mutator.alloc m ~nrefs:1 ~size:node in
    Mutator.set_ref m fresh 0 tail;
    Mutator.root_set m li fresh;
    Mutator.root_set m 8 0;
    Mutator.root_set m 9 0;
    Mutator.work m 8_000;
    if validate && !tx mod 500 = 0 then begin
      let len = Objgraph.list_length m (Mutator.root_get m li) in
      if len <> per_list then
        Alcotest.failf "resident list corrupted: %d instead of %d" len per_list
    end;
    Mutator.tx_done m
  done

let run_vm ?(heap_mb = 8.0) ?(ncpus = 4) ?(workers = 4) ?(ms = 800.0)
    ?resident ?gc ?fence_policy () =
  let gc = match gc with Some g -> g | None -> Config.default in
  let vm = Vm.create (Vm.config ~heap_mb ~ncpus ~gc ?fence_policy ()) in
  for i = 1 to workers do
    Vm.spawn_mutator vm
      ~name:(Printf.sprintf "w%d" i)
      (churn_worker ?resident ())
  done;
  Vm.run vm ~ms;
  vm

let test_cgc_collects_and_stays_sound () =
  let vm = run_vm () in
  let st = Vm.gc_stats vm in
  check cb "cycles happened" true (st.Gstats.cycles >= 3);
  check cb "transactions happened" true (Vm.total_transactions vm > 1000);
  check (Alcotest.list (Alcotest.pair ci ci)) "reachable heap intact" []
    (Collector.check_reachable (Vm.collector vm));
  check ci "no tracer corruption" 0
    (Tracer.corruptions (Collector.tracer (Vm.collector vm)))

let test_stw_collects_and_stays_sound () =
  let vm = run_vm ~gc:Config.stw () in
  let st = Vm.gc_stats vm in
  check cb "cycles happened" true (st.Gstats.cycles >= 3);
  check ci "no concurrent completions in STW mode" 0 st.Gstats.premature_cycles;
  check (Alcotest.list (Alcotest.pair ci ci)) "reachable heap intact" []
    (Collector.check_reachable (Vm.collector vm))

let test_cgc_shorter_pauses_than_stw () =
  (* Paper-scale configuration (the headline claim): a SPECjbb-like
     workload at ~60% residency, with a warm-up period so the metering
     estimators have converged. *)
  let measure gc =
    let vm =
      Cgc_workloads.Specjbb.setup ~warehouses:4 ~gc ~heap_mb:32.0 ()
    in
    Vm.run_measured vm ~warmup_ms:1500.0 ~ms:3000.0;
    vm
  in
  let cgc = measure Config.default in
  let stw = measure Config.stw in
  let p vm = Hist.mean (Vm.gc_stats vm).Gstats.pause_ms in
  let mark vm = Hist.mean (Vm.gc_stats vm).Gstats.mark_ms in
  check cb "CGC pauses well below STW pauses" true (p cgc < 0.6 *. p stw);
  check cb "CGC mark component far below STW's" true
    (mark cgc < 0.35 *. mark stw)

let test_stw_mode_has_no_write_barrier () =
  let vm = run_vm ~gc:Config.stw ~ms:300.0 () in
  let st = Vm.gc_stats vm in
  check cb "no concurrent cards in STW mode" true
    (Stats.count st.Gstats.conc_cards = 0
    || Stats.mean st.Gstats.conc_cards = 0.0)

let test_pause_components_sum () =
  let vm = run_vm () in
  let st = Vm.gc_stats vm in
  let sum = Hist.mean st.Gstats.mark_ms +. Hist.mean st.Gstats.sweep_ms in
  let pause = Hist.mean st.Gstats.pause_ms in
  check cb "mark + sweep ~ pause" true
    (sum <= pause +. 0.01 && sum >= 0.7 *. pause)

let test_occupancy_measured () =
  let vm = run_vm () in
  let st = Vm.gc_stats vm in
  let occ = Stats.mean st.Gstats.occupancy_end in
  check cb "occupancy in a plausible band" true (occ > 0.05 && occ < 0.95)

let test_floating_garbage_nonnegative () =
  (* CGC retains at least as much as STW does (floating garbage >= 0,
     within noise). *)
  let cgc = run_vm ~ms:1500.0 () in
  let stw = run_vm ~ms:1500.0 ~gc:Config.stw () in
  let occ vm = Stats.mean (Vm.gc_stats vm).Gstats.occupancy_end in
  check cb "CGC occupancy >= STW occupancy - eps" true
    (occ cgc >= occ stw -. 0.02)

let test_lazy_sweep_mode () =
  let gc = { Config.default with Config.lazy_sweep = true } in
  let vm = run_vm ~gc ~ms:1000.0 () in
  let st = Vm.gc_stats vm in
  check cb "cycles happened" true (st.Gstats.cycles >= 2);
  check cb "sweep component (almost) eliminated from pause" true
    (Hist.mean st.Gstats.sweep_ms < 0.1);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact under lazy sweep" []
    (Collector.check_reachable (Vm.collector vm))

let test_two_card_passes () =
  let gc = { Config.default with Config.card_passes = 2 } in
  let vm = run_vm ~gc ~ms:1000.0 () in
  let st = Vm.gc_stats vm in
  check cb "cycles happened" true (st.Gstats.cycles >= 2);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact with 2 passes" []
    (Collector.check_reachable (Vm.collector vm))

let test_naive_fence_policy_end_to_end () =
  let vm = run_vm ~fence_policy:Cgc_heap.Heap.Naive ~ms:400.0 () in
  let m = Vm.machine vm in
  let f = m.Cgc_smp.Machine.fences in
  check cb "naive-alloc fences dominate" true
    (Cgc_smp.Fence.get f Cgc_smp.Fence.Naive_alloc
    > 10 * Cgc_smp.Fence.get f Cgc_smp.Fence.Alloc_batch);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact" []
    (Collector.check_reachable (Vm.collector vm))

let test_fence_batching_saves_fences () =
  let batched = run_vm ~ms:400.0 () in
  let naive = run_vm ~fence_policy:Cgc_heap.Heap.Naive ~ms:400.0 () in
  let total vm =
    Cgc_smp.Fence.total (Vm.machine vm).Cgc_smp.Machine.fences
  in
  check cb "batching cuts fences by at least 5x" true
    (total naive > 5 * total batched)

let test_out_of_memory () =
  (* live set exceeds the heap: the collector must raise Out_of_memory
     rather than corrupt. *)
  let vm = Vm.create (Vm.config ~heap_mb:1.0 ~ncpus:1 ()) in
  let raised = ref false in
  Vm.spawn_mutator vm ~name:"greedy" (fun m ->
      try
        let rec grow prev n =
          if n > 1_000_000 then ()
          else begin
            let o = Mutator.alloc m ~nrefs:1 ~size:64 in
            Mutator.set_ref m o 0 prev;
            Mutator.root_set m 0 o;
            grow o (n + 1)
          end
        in
        grow 0 0
      with Collector.Out_of_memory d ->
        raised := true;
        (* The ladder must have been climbed to the top, and the
           diagnostic must describe the failing request. *)
        check ci "all three rungs climbed" 3 d.Collector.oom_rungs;
        check ci "request size recorded" 64 d.Collector.oom_request);
  Vm.run vm ~ms:10_000.0;
  check cb "Out_of_memory raised" true !raised;
  let st = Vm.gc_stats vm in
  check cb "force-finish rung counted" true
    (st.Cgc_core.Gstats.degrade_force_finish > 0);
  check cb "full-STW rung counted" true
    (st.Cgc_core.Gstats.degrade_full_stw > 0);
  check cb "compaction rung counted" true
    (st.Cgc_core.Gstats.degrade_compact > 0);
  check cb "OOM counted" true (st.Cgc_core.Gstats.oom_raised > 0)

let test_force_collect_frees_garbage () =
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:1 ()) in
  let freed = ref 0 in
  Vm.spawn_mutator vm ~name:"m" (fun m ->
      (* allocate 2 MB of garbage *)
      for _ = 1 to 20_000 do
        ignore (Mutator.alloc m ~nrefs:0 ~size:13)
      done;
      let before = Cgc_heap.Heap.free_slots (Vm.heap vm) in
      Collector.force_collect (Vm.collector vm);
      let after = Cgc_heap.Heap.free_slots (Vm.heap vm) in
      freed := after - before);
  Vm.run vm ~ms:10_000.0;
  check cb "forced collection recovered space" true (!freed > 100_000)

let test_determinism () =
  let run () =
    let vm = run_vm ~ms:500.0 () in
    ( Vm.total_transactions vm,
      (Vm.gc_stats vm).Gstats.cycles,
      Hist.mean (Vm.gc_stats vm).Gstats.pause_ms )
  in
  let t1, c1, p1 = run () in
  let t2, c2, p2 = run () in
  check ci "same transactions" t1 t2;
  check ci "same cycles" c1 c2;
  check (Alcotest.float 1e-9) "same pauses" p1 p2

let test_junk_roots_tolerated () =
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:2 ()) in
  Vm.spawn_mutator vm ~name:"junk" (fun m ->
      let rng = Mutator.rng m in
      while not (Mutator.stopped m) do
        for i = 0 to 7 do
          Mutator.root_set m i (Cgc_util.Prng.int rng max_int)
        done;
        ignore (Mutator.alloc m ~nrefs:0 ~size:8);
        Mutator.work m 2_000;
        Mutator.tx_done m
      done);
  Vm.run vm ~ms:500.0;
  check cb "survived junk roots across GCs" true
    ((Vm.gc_stats vm).Gstats.cycles >= 1)

let test_non_allocating_thread_scanned () =
  (* A thread that holds the only reference to an object but never
     allocates: the object must survive (stack scanned via the
     no-other-work path / STW rescan). *)
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:2 ()) in
  let ok = ref false in
  let handoff = ref 0 in
  Vm.spawn_mutator vm ~name:"holder" (fun m ->
      (* wait until the allocator publishes an object, then hold it in our
         stack only *)
      while !handoff = 0 do
        Mutator.think m 10_000
      done;
      Mutator.root_set m 0 !handoff;
      (* sleep through several GC cycles *)
      Mutator.think m 300_000_000;
      let arena = Cgc_heap.Heap.arena (Vm.heap vm) in
      ok :=
        Cgc_heap.Arena.header_valid arena !handoff
        && Cgc_heap.Arena.size_of arena !handoff = 24);
  Vm.spawn_mutator vm ~name:"allocator" (fun m ->
      let o = Mutator.alloc m ~nrefs:0 ~size:24 in
      Mutator.root_set m 0 o;
      (* force publication of the allocation bits, then hand off *)
      ignore (Mutator.alloc m ~nrefs:0 ~size:8);
      Collector.force_collect (Vm.collector vm);
      handoff := o;
      Mutator.root_set m 0 0;
      (* churn to force several GC cycles while the holder sleeps *)
      while not (Mutator.stopped m) do
        ignore (Mutator.alloc m ~nrefs:0 ~size:16);
        Mutator.work m 500;
        Mutator.tx_done m
      done);
  Vm.run vm ~ms:800.0;
  check cb "object held only by a sleeping thread survived" true !ok

(* --------------------------- Metering --------------------------- *)

let test_metering_kickoff () =
  let m = Metering.create Config.default ~heap_slots:1_000_000 in
  (* L = 0.4 heap, M = 0.02 heap, K0 = 8: threshold = 52_500 *)
  check cb "threshold value" true
    (abs_float (Metering.kickoff_threshold m -. 52_500.0) < 1.0);
  check cb "plenty of free: no start" false (Metering.should_start m ~free:500_000);
  check cb "low free: start" true (Metering.should_start m ~free:50_000)

let test_metering_progress_basic () =
  let m = Metering.create Config.default ~heap_slots:1_000_000 in
  (* at kickoff, K should be near K0 *)
  let k = Metering.increment_rate m ~traced:0 ~free:52_500 in
  check cb "K near K0 at kickoff" true (abs_float (k -. 8.0) < 1.0)

let test_metering_negative_k_clamps () =
  let m = Metering.create Config.default ~heap_slots:1_000_000 in
  (* traced far beyond L+M: K negative -> Kmax = 2*K0 = 16 *)
  let k = Metering.increment_rate m ~traced:900_000 ~free:100_000 in
  check (Alcotest.float 1e-6) "Kmax" 16.0 k

let test_metering_background_credit () =
  let m = Metering.create Config.default ~heap_slots:1_000_000 in
  (* background does everything: mutator rate 0 *)
  for _ = 1 to 20 do
    Metering.observe_background m ~bg_traced:100_000 ~mutator_alloc:1_000
  done;
  check cb "Best large" true (Metering.best m > 50.0);
  let k = Metering.increment_rate m ~traced:0 ~free:52_500 in
  check (Alcotest.float 1e-6) "mutators trace nothing" 0.0 k

let test_metering_corrective_boost () =
  let m = Metering.create Config.default ~heap_slots:1_000_000 in
  (* Behind schedule: free much smaller than remaining work / K0 *)
  let k_behind = Metering.increment_rate m ~traced:0 ~free:30_000 in
  (* raw K = 420_000/30_000 = 14 > K0=8, boosted by C=0.5: 14 + 3 = 17,
     clamped to kmax_factor*kmax = 32 -> 17 *)
  check cb "boosted above raw K" true (k_behind > 14.0);
  check cb "still bounded" true (k_behind <= 32.0)

let test_metering_work_amount () =
  let m = Metering.create Config.default ~heap_slots:1_000_000 in
  let w = Metering.increment_work m ~traced:0 ~free:52_500 ~alloc:256 in
  check cb "work ~ K*alloc" true (w >= 256 * 7 && w <= 256 * 9)

let test_metering_end_cycle_updates () =
  let m = Metering.create Config.default ~heap_slots:1_000_000 in
  let l0 = Metering.l_estimate m in
  Metering.end_cycle m ~l_observed:100_000 ~m_observed:5_000;
  check cb "L moved toward observation" true (Metering.l_estimate m < l0);
  check cb "L is a blend" true (Metering.l_estimate m > 100_000.0)

let () =
  Alcotest.run "collector"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "CGC sound" `Slow test_cgc_collects_and_stays_sound;
          Alcotest.test_case "STW sound" `Slow test_stw_collects_and_stays_sound;
          Alcotest.test_case "CGC pauses < STW pauses" `Slow
            test_cgc_shorter_pauses_than_stw;
          Alcotest.test_case "STW has no barrier work" `Slow
            test_stw_mode_has_no_write_barrier;
          Alcotest.test_case "pause components" `Slow test_pause_components_sum;
          Alcotest.test_case "occupancy measured" `Slow test_occupancy_measured;
          Alcotest.test_case "floating garbage >= 0" `Slow
            test_floating_garbage_nonnegative;
          Alcotest.test_case "lazy sweep mode" `Slow test_lazy_sweep_mode;
          Alcotest.test_case "two card passes" `Slow test_two_card_passes;
          Alcotest.test_case "naive fence policy" `Slow
            test_naive_fence_policy_end_to_end;
          Alcotest.test_case "fence batching saves fences" `Slow
            test_fence_batching_saves_fences;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "force_collect" `Quick
            test_force_collect_frees_garbage;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "junk roots" `Quick test_junk_roots_tolerated;
          Alcotest.test_case "non-allocating thread" `Slow
            test_non_allocating_thread_scanned;
        ] );
      ( "metering",
        [
          Alcotest.test_case "kickoff formula" `Quick test_metering_kickoff;
          Alcotest.test_case "progress basic" `Quick test_metering_progress_basic;
          Alcotest.test_case "negative K clamps to Kmax" `Quick
            test_metering_negative_k_clamps;
          Alcotest.test_case "background credit" `Quick
            test_metering_background_credit;
          Alcotest.test_case "corrective boost" `Quick
            test_metering_corrective_boost;
          Alcotest.test_case "work amount" `Quick test_metering_work_amount;
          Alcotest.test_case "end_cycle updates" `Quick
            test_metering_end_cycle_updates;
        ] );
    ]
