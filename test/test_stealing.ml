(* Tests for the work-stealing mark stacks (the section 4.4 comparison
   mechanism): correctness of parallel marking, actual stealing between
   workers, exposure of surplus work, termination, and the end-to-end
   STW baseline configured with stealing. *)

module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Sched = Cgc_sim.Sched
module Parallel = Cgc_sim.Parallel
module Stealing = Cgc_core.Stealing
module Config = Cgc_core.Config
module Vm = Cgc_runtime.Vm
module Stats = Cgc_util.Stats

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* Build a heap with a wide object graph; returns (heap, root, all). *)
let build_graph mach ~fanout ~depth =
  let heap = Heap.create mach ~nslots:(1 lsl 18) in
  let all = ref [] in
  let rec build d =
    let nrefs = if d = 0 then 0 else fanout in
    let a =
      match Heap.alloc_large heap ~size:(max 4 (nrefs + 1)) ~nrefs ~mark_new:false with
      | Some a -> a
      | None -> failwith "heap too small"
    in
    all := a :: !all;
    if d > 0 then
      for i = 0 to fanout - 1 do
        Arena.ref_set_raw (Heap.arena heap) a i (build (d - 1))
      done;
    a
  in
  let root = build depth in
  (heap, root, !all)

let run_mark ~workers ~fanout ~depth =
  let mach = Machine.testing () in
  let heap, root, all = build_graph mach ~fanout ~depth in
  let stl = Stealing.create heap ~nworkers:workers in
  let sched = Sched.create ~ncpus:workers () in
  ignore
    (Sched.spawn sched ~name:"driver" ~prio:Sched.Normal (fun () ->
         Stealing.push_obj stl ~worker:0 root;
         Parallel.run sched ~workers (fun wid ->
             Stealing.mark_worker stl ~worker:wid)));
  Sched.run sched ~until:max_int;
  (heap, stl, all)

let test_marks_everything_1worker () =
  let heap, _, all = run_mark ~workers:1 ~fanout:3 ~depth:6 in
  List.iter
    (fun a -> check cb "marked" true (Heap.is_marked heap a))
    all

let test_marks_everything_4workers () =
  let heap, stl, all = run_mark ~workers:4 ~fanout:4 ~depth:6 in
  List.iter
    (fun a -> check cb "marked" true (Heap.is_marked heap a))
    all;
  let expected =
    List.fold_left
      (fun acc a -> acc + Arena.size_of_sc (Heap.arena heap) a)
      0 all
  in
  check ci "volume accounted" expected (Stealing.marked_slots stl)

let test_stealing_happens () =
  (* A wide graph started on worker 0 must spill to the others. *)
  let _, stl, _ = run_mark ~workers:4 ~fanout:6 ~depth:6 in
  check cb "surplus exposed" true (Stealing.exposes stl > 0);
  check cb "steals happened" true (Stealing.steals stl > 0)

let test_push_root_validates () =
  let mach = Machine.testing () in
  let heap, root, _ = build_graph mach ~fanout:2 ~depth:2 in
  let stl = Stealing.create heap ~nworkers:1 in
  check cb "valid root accepted" true (Stealing.push_root stl ~worker:0 root);
  check cb "junk rejected" false (Stealing.push_root stl ~worker:0 999_999);
  check cb "null rejected" false (Stealing.push_root stl ~worker:0 0)

let test_stw_baseline_with_stealing () =
  (* End-to-end: the baseline collector configured with stealing for its
     parallel mark produces a sound heap and comparable pauses. *)
  let gc = { Config.stw with Config.load_balance = Config.Stealing } in
  let vm = Cgc_workloads.Specjbb.setup ~warehouses:4 ~gc ~heap_mb:16.0 () in
  Vm.run vm ~ms:800.0;
  let st = Vm.gc_stats vm in
  check cb "collections happened" true (st.Cgc_core.Gstats.cycles >= 2);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact under stealing" []
    (Cgc_core.Collector.check_reachable (Vm.collector vm));
  check cb "pauses recorded" true (Cgc_util.Histogram.mean st.Cgc_core.Gstats.pause_ms > 0.0)

let test_stealing_matches_packets_live_set () =
  (* Same workload, same seed: the two load balancers must mark the same
     amount of live data (determinism makes this exact). *)
  let run load_balance =
    let gc = { Config.stw with Config.load_balance } in
    let vm = Cgc_workloads.Specjbb.setup ~warehouses:2 ~gc ~heap_mb:16.0 () in
    Vm.run vm ~ms:600.0;
    Stats.mean (Vm.gc_stats vm).Cgc_core.Gstats.occupancy_end
  in
  let occ_packets = run Config.Packets in
  let occ_steal = run Config.Stealing in
  check (Alcotest.float 0.02) "same live set" occ_packets occ_steal

let () =
  Alcotest.run "stealing"
    [
      ( "stealing",
        [
          Alcotest.test_case "marks everything (1 worker)" `Quick
            test_marks_everything_1worker;
          Alcotest.test_case "marks everything (4 workers)" `Quick
            test_marks_everything_4workers;
          Alcotest.test_case "stealing happens" `Quick test_stealing_happens;
          Alcotest.test_case "push_root validates" `Quick
            test_push_root_validates;
          Alcotest.test_case "STW baseline with stealing" `Slow
            test_stw_baseline_with_stealing;
          Alcotest.test_case "stealing = packets live set" `Slow
            test_stealing_matches_packets_live_set;
        ] );
    ]
