(* Tests for the discrete-event scheduler: effect-based threads, cycle
   accounting, priorities, preemption, sleep, stop-the-world and the
   fork-join helper. *)

module Sched = Cgc_sim.Sched
module Parallel = Cgc_sim.Parallel

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let test_single_thread_consumes () =
  let s = Sched.create ~ncpus:1 () in
  let done_at = ref (-1) in
  ignore
    (Sched.spawn s ~name:"t" ~prio:Sched.Normal (fun () ->
         Sched.consume 1000;
         done_at := Sched.now s));
  Sched.run s ~until:1_000_000;
  check ci "consumed 1000 cycles" 1000 !done_at

let test_threads_finish () =
  let s = Sched.create ~ncpus:2 () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Sched.spawn s ~name:"w" ~prio:Sched.Normal (fun () ->
           Sched.consume 500;
           incr count))
  done;
  Sched.run s ~until:1_000_000;
  check ci "all threads ran" 10 !count

let test_parallel_speedup () =
  (* 4 threads of equal work on 4 CPUs should finish in about the time of
     one, not four. *)
  let run ncpus =
    let s = Sched.create ~ncpus () in
    let finish = ref 0 in
    for _ = 1 to 4 do
      ignore
        (Sched.spawn s ~name:"w" ~prio:Sched.Normal (fun () ->
             Sched.consume 100_000;
             if Sched.now s > !finish then finish := Sched.now s))
    done;
    Sched.run s ~until:10_000_000;
    !finish
  in
  let t1 = run 1 and t4 = run 4 in
  check cb "4 cpus at least 3x faster" true (t1 > 3 * t4)

let test_sleep_wakes () =
  let s = Sched.create ~ncpus:1 () in
  let woke_at = ref (-1) in
  ignore
    (Sched.spawn s ~name:"sleeper" ~prio:Sched.Normal (fun () ->
         Sched.sleep 5000;
         woke_at := Sched.now s));
  Sched.run s ~until:1_000_000;
  check cb "woke after 5000" true (!woke_at >= 5000)

let test_sleep_frees_cpu () =
  (* While one thread sleeps, another runs; total elapsed ~ sleep time,
     not sleep + work. *)
  let s = Sched.create ~ncpus:1 () in
  let worked = ref 0 in
  ignore
    (Sched.spawn s ~name:"sleeper" ~prio:Sched.Normal (fun () ->
         Sched.sleep 100_000));
  ignore
    (Sched.spawn s ~name:"worker" ~prio:Sched.Normal (fun () ->
         for _ = 1 to 10 do
           Sched.consume 5_000;
           worked := !worked + 5_000
         done));
  Sched.run s ~until:10_000_000;
  check ci "worker did all its work" 50_000 !worked;
  check cb "busy cycles counted" true (Sched.busy_cycles s >= 50_000)

let test_low_priority_starves_under_load () =
  (* Low-priority threads are heavily deprioritised under load, but
     priority aging gives them an occasional slice (one per
     [low_boost_every] dispatches) so they never starve absolutely. *)
  let s = Sched.create ~ncpus:1 ~quantum:1000 () in
  let low_ran = ref 0 in
  let normal_done = ref false in
  ignore
    (Sched.spawn s ~name:"normal" ~prio:Sched.Normal (fun () ->
         for _ = 1 to 100 do
           Sched.consume 1000
         done;
         normal_done := true));
  ignore
    (Sched.spawn s ~name:"low" ~prio:Sched.Low (fun () ->
         Sched.consume 10;
         low_ran := Sched.now s));
  Sched.run s ~until:10_000_000;
  check cb "normal finished" true !normal_done;
  (* The low thread waited for many normal quanta (the aging threshold)
     before getting its first slice. *)
  check cb "low heavily deprioritised" true (!low_ran >= 50 * 1000)

let test_low_priority_uses_idle () =
  (* When the normal thread sleeps, the low-priority thread soaks the
     idle processor. *)
  let s = Sched.create ~ncpus:1 () in
  let low_progress = ref 0 in
  ignore
    (Sched.spawn s ~name:"normal" ~prio:Sched.Normal (fun () ->
         for _ = 1 to 5 do
           Sched.consume 1_000;
           Sched.sleep 50_000
         done));
  ignore
    (Sched.spawn s ~name:"low" ~prio:Sched.Low (fun () ->
         for _ = 1 to 100 do
           Sched.consume 1_000;
           incr low_progress;
           Sched.yield ()
         done));
  Sched.run s ~until:1_000_000;
  check cb "low made progress during sleeps" true (!low_progress >= 100)

let test_preemption_interleaves () =
  (* With a small quantum two equal threads on one CPU should interleave,
     so neither finishes drastically before the other. *)
  let s = Sched.create ~ncpus:1 ~quantum:1_000 () in
  let first_done = ref "" in
  let spawn name =
    ignore
      (Sched.spawn s ~name ~prio:Sched.Normal (fun () ->
           for _ = 1 to 50 do
             Sched.consume 1_000
           done;
           if !first_done = "" then first_done := name))
  in
  spawn "a";
  spawn "b";
  Sched.run s ~until:10_000_000;
  (* both consumed 50k; with round-robin the first finisher ends within
     ~one quantum of the second *)
  check cb "someone finished" true (!first_done <> "")

let test_stop_the_world () =
  let s = Sched.create ~ncpus:2 ~quantum:500 () in
  let mutator_progress = ref 0 in
  let during_stop = ref (-1) in
  let after_stop = ref (-1) in
  ignore
    (Sched.spawn s ~name:"mutator" ~prio:Sched.Normal (fun () ->
         for _ = 1 to 1000 do
           Sched.consume 100;
           incr mutator_progress
         done));
  ignore
    (Sched.spawn s ~name:"gc" ~prio:Sched.Normal (fun () ->
         Sched.consume 2_000;
         Sched.stop_the_world s;
         let p0 = !mutator_progress in
         (* burn a long time; the mutator must not advance *)
         for _ = 1 to 100 do
           Sched.consume 1_000
         done;
         during_stop := !mutator_progress - p0;
         let pause = Sched.restart_world s in
         after_stop := pause));
  Sched.run s ~until:10_000_000;
  check ci "mutator frozen during stop" 0 !during_stop;
  check cb "pause measured" true (!after_stop >= 100_000);
  check ci "mutator finished after restart" 1000 !mutator_progress

let test_high_prio_runs_during_stop () =
  let s = Sched.create ~ncpus:2 ~quantum:500 () in
  let helper_ran = ref false in
  ignore
    (Sched.spawn s ~name:"gc" ~prio:Sched.Normal (fun () ->
         Sched.stop_the_world s;
         ignore
           (Sched.spawn s ~name:"helper" ~prio:Sched.High (fun () ->
                Sched.consume 100;
                helper_ran := true));
         (* wait for helper *)
         while not !helper_ran do
           Sched.yield ()
         done;
         ignore (Sched.restart_world s)));
  Sched.run s ~until:10_000_000;
  check cb "helper ran while world stopped" true !helper_ran

let test_parallel_join () =
  let s = Sched.create ~ncpus:4 () in
  let hits = Array.make 4 false in
  let after = ref false in
  ignore
    (Sched.spawn s ~name:"main" ~prio:Sched.Normal (fun () ->
         Parallel.run s ~workers:4 (fun i ->
             Sched.consume (1000 * (i + 1));
             hits.(i) <- true);
         after := Array.for_all (fun x -> x) hits));
  Sched.run s ~until:10_000_000;
  check cb "all workers ran before join returned" true !after

let test_determinism () =
  let run () =
    let s = Sched.create ~ncpus:3 ~quantum:700 () in
    let log = Buffer.create 64 in
    for i = 1 to 5 do
      ignore
        (Sched.spawn s
           ~name:(Printf.sprintf "t%d" i)
           ~prio:Sched.Normal
           (fun () ->
             for _ = 1 to 10 do
               Sched.consume (100 * i);
               Buffer.add_string log (string_of_int i)
             done))
    done;
    Sched.run s ~until:1_000_000;
    Buffer.contents log
  in
  check Alcotest.string "two identical runs interleave identically" (run ())
    (run ())

let test_run_until_bounds () =
  let s = Sched.create ~ncpus:1 ~quantum:10_000 () in
  ignore
    (Sched.spawn s ~name:"inf" ~prio:Sched.Normal (fun () ->
         while true do
           Sched.consume 1_000
         done));
  Sched.run s ~until:50_000;
  check cb "stopped near the bound" true (Sched.now s <= 80_000);
  (* the cooperative stop flag is only raised by request_stop, so that
     [run] can be called again to continue the simulation *)
  check cb "stop flag untouched" false (Sched.stop_requested s);
  Sched.request_stop s;
  check cb "request_stop raises it" true (Sched.stop_requested s)

let test_idle_accounting () =
  let s = Sched.create ~ncpus:4 ~quantum:10_000 () in
  ignore
    (Sched.spawn s ~name:"lone" ~prio:Sched.Normal (fun () ->
         Sched.consume 100_000));
  Sched.run s ~until:1_000_000;
  check cb "idle cycles recorded on the other cpus" true
    (Sched.idle_cycles s > 0)

let test_thread_cycles () =
  let s = Sched.create ~ncpus:1 () in
  let th = ref None in
  ignore
    (Sched.spawn s ~name:"t" ~prio:Sched.Normal (fun () ->
         th := Some (Sched.current s);
         Sched.consume 12_345));
  Sched.run s ~until:1_000_000;
  match !th with
  | Some th -> check ci "cycles attributed" 12_345 (Sched.thread_cycles th)
  | None -> Alcotest.fail "thread never ran"

let test_no_thread_retention () =
  (* Regression for the PR 9 vacated-slot leaks: thousands of short-lived
     sleepers churn the sleep queue and all three runqueue rings through
     growth and wrap; afterwards no queue may retain a reference to any
     dead thread. *)
  let s = Sched.create ~ncpus:4 ~quantum:10_000 () in
  for i = 0 to 2_999 do
    let prio =
      match i mod 3 with 0 -> Sched.High | 1 -> Sched.Normal | _ -> Sched.Low
    in
    ignore
      (Sched.spawn s ~name:"ephemeral" ~prio (fun () ->
           Sched.sleep (1 + (i mod 97) * 53);
           Sched.consume (1 + (i mod 11) * 1_000);
           Sched.yield ();
           Sched.sleep (1 + (i mod 13) * 29)))
  done;
  Sched.run s ~until:100_000_000;
  check cb "all threads finished" true
    (List.for_all
       (fun th -> Sched.thread_state th = Sched.Dead)
       (Sched.threads s));
  check cb "no queue retains a dead thread" true (Sched.debug_queues_clean s)

let test_consume_on_matches_consume () =
  (* The allocation-free [consume_on] must be observationally identical
     to the effect-based [consume], including preemption points. *)
  let run use_direct =
    let s = Sched.create ~ncpus:2 ~quantum:10_000 () in
    let log = ref [] in
    for t = 0 to 3 do
      ignore
        (Sched.spawn s ~name:"w" ~prio:Sched.Normal (fun () ->
             for i = 0 to 20 do
               let n = 1_000 + (397 * ((t * 21) + i) mod 9_000) in
               if use_direct then Sched.consume_on s n else Sched.consume n;
               log := (t, i, Sched.now s) :: !log
             done))
    done;
    Sched.run s ~until:10_000_000;
    (!log, Sched.now s, Sched.busy_cycles s, Sched.idle_cycles s)
  in
  let a = run true and b = run false in
  check cb "identical schedules" true (a = b)

let () =
  Alcotest.run "sim"
    [
      ( "sched",
        [
          Alcotest.test_case "single thread" `Quick test_single_thread_consumes;
          Alcotest.test_case "threads finish" `Quick test_threads_finish;
          Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
          Alcotest.test_case "sleep wakes" `Quick test_sleep_wakes;
          Alcotest.test_case "sleep frees cpu" `Quick test_sleep_frees_cpu;
          Alcotest.test_case "low prio starves under load" `Quick
            test_low_priority_starves_under_load;
          Alcotest.test_case "low prio soaks idle" `Quick
            test_low_priority_uses_idle;
          Alcotest.test_case "preemption" `Quick test_preemption_interleaves;
          Alcotest.test_case "stop the world" `Quick test_stop_the_world;
          Alcotest.test_case "high prio during stop" `Quick
            test_high_prio_runs_during_stop;
          Alcotest.test_case "parallel join" `Quick test_parallel_join;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "run until bound" `Quick test_run_until_bounds;
          Alcotest.test_case "idle accounting" `Quick test_idle_accounting;
          Alcotest.test_case "thread cycles" `Quick test_thread_cycles;
          Alcotest.test_case "no thread retention (regression)" `Quick
            test_no_thread_retention;
          Alcotest.test_case "consume_on matches consume" `Quick
            test_consume_on_matches_consume;
        ] );
    ]
