(* Tests for the simulated SMP substrate: the weak-ordering memory system,
   the machine context (debt charging, fences, CAS accounting) and the
   cost model. *)

module Prng = Cgc_util.Prng
module Weakmem = Cgc_smp.Weakmem
module Machine = Cgc_smp.Machine
module Fence = Cgc_smp.Fence
module Cost = Cgc_smp.Cost

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------ Weakmem ------------------------------ *)

let mk_relaxed ?(max_delay = 1000) ?(seed = 1) () =
  Weakmem.create ~max_delay ~mode:Weakmem.Relaxed ~rng:(Prng.create seed) ()

let test_sc_mode_transparent () =
  let wm = Weakmem.create ~mode:Weakmem.Sc ~rng:(Prng.create 1) () in
  let key = Weakmem.register wm 10 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:0;
  check ci "sc read returns current" 42
    (Weakmem.read wm ~cpu:1 ~now:0 ~key ~current:42);
  check ci "no pending in SC" 0 (Weakmem.pending_count wm)

let test_own_store_visible () =
  let wm = mk_relaxed () in
  let key = Weakmem.register wm 1 in
  (* cpu 0 stores 1 (prev 0); the backing value is updated by the caller. *)
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:0;
  check ci "own store visible immediately" 1
    (Weakmem.read wm ~cpu:0 ~now:0 ~key ~current:1)

let test_remote_store_masked () =
  let wm = mk_relaxed ~max_delay:10_000 () in
  let key = Weakmem.register wm 1 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:7;
  check ci "remote reader sees previous value" 7
    (Weakmem.read wm ~cpu:1 ~now:1 ~key ~current:99)

let test_fence_publishes () =
  let wm = mk_relaxed ~max_delay:10_000 () in
  let key = Weakmem.register wm 1 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:7;
  Weakmem.fence wm ~cpu:0 ~now:1;
  check ci "post-fence remote read sees current" 99
    (Weakmem.read wm ~cpu:1 ~now:1 ~key ~current:99);
  check ci "nothing pending" 0 (Weakmem.pending_count wm)

let test_fence_only_own_cpu () =
  let wm = mk_relaxed ~max_delay:10_000 () in
  let k0 = Weakmem.register wm 1 in
  let k1 = Weakmem.register wm 1 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key:k0 ~prev:1;
  Weakmem.store wm ~cpu:2 ~now:0 ~key:k1 ~prev:2;
  Weakmem.fence wm ~cpu:0 ~now:1;
  check ci "cpu0 store drained" 10 (Weakmem.read wm ~cpu:1 ~now:1 ~key:k0 ~current:10);
  check ci "cpu2 store still masked" 2
    (Weakmem.read wm ~cpu:1 ~now:1 ~key:k1 ~current:20)

let test_fence_all () =
  let wm = mk_relaxed ~max_delay:10_000 () in
  let k0 = Weakmem.register wm 1 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key:k0 ~prev:1;
  Weakmem.store wm ~cpu:1 ~now:0 ~key:k0 ~prev:2;
  Weakmem.fence_all wm;
  check ci "pending drained" 0 (Weakmem.pending_count wm)

let test_natural_drain () =
  let wm = mk_relaxed ~max_delay:100 () in
  let key = Weakmem.register wm 1 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:7;
  (* after max_delay the store drains on its own *)
  Weakmem.commit_due wm ~now:200;
  check ci "drained by deadline" 99
    (Weakmem.read wm ~cpu:1 ~now:200 ~key ~current:99)

let test_store_store_reordering_occurs () =
  (* Two stores by cpu 0 to different locations can become visible to a
     remote reader in either order: find a seed where the second store
     drains first. *)
  let reordered = ref false in
  (try
     for seed = 1 to 200 do
       let wm = mk_relaxed ~max_delay:10_000 ~seed () in
       let ka = Weakmem.register wm 1 in
       let kb = Weakmem.register wm 1 in
       Weakmem.store wm ~cpu:0 ~now:0 ~key:ka ~prev:0;
       Weakmem.store wm ~cpu:0 ~now:1 ~key:kb ~prev:0;
       (* advance time gradually, checking whether B became visible
          while A is still masked *)
       for t = 2 to 10_000 do
         if t mod 50 = 0 then begin
           let a = Weakmem.read wm ~cpu:1 ~now:t ~key:ka ~current:1 in
           let b = Weakmem.read wm ~cpu:1 ~now:t ~key:kb ~current:1 in
           if b = 1 && a = 0 then begin
             reordered := true;
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  check cb "store-store reordering observable" true !reordered

let test_per_location_coherence () =
  (* Successive stores to the SAME location must become visible in
     program order: the remote reader must never see the older value
     after having seen the newer one. *)
  for seed = 1 to 50 do
    let wm = mk_relaxed ~max_delay:500 ~seed () in
    let key = Weakmem.register wm 1 in
    (* backing value evolves 0 -> 1 -> 2 *)
    Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:0;
    (* value now 1 *)
    Weakmem.store wm ~cpu:0 ~now:1 ~key ~prev:1;
    (* value now 2 *)
    let best = ref 0 in
    for t = 2 to 2000 do
      let v = Weakmem.read wm ~cpu:1 ~now:t ~key ~current:2 in
      if v < !best then
        Alcotest.failf "coherence violated: saw %d after %d (seed %d)" v !best
          seed;
      if v > !best then best := v
    done
  done

let test_fenced_store_supersedes_older () =
  (* Regression for a lost-object bug found on the full collector: an
     unfenced store by cpu 0 must stop masking reads once a NEWER store
     to the same location is made globally visible by cpu 1's fence —
     per-location coherence means reads can never go back in time past a
     visible store, regardless of whose buffer the older store sat in. *)
  let wm = mk_relaxed ~max_delay:1_000_000 () in
  let key = Weakmem.register wm 1 in
  (* backing value: 0 -> (cpu0 stores 1) -> (cpu1 stores 2) *)
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:0;
  Weakmem.store wm ~cpu:1 ~now:1 ~key ~prev:1;
  Weakmem.fence wm ~cpu:1 ~now:2;
  check ci "reader sees the fenced value, not the pre-history" 2
    (Weakmem.read wm ~cpu:2 ~now:3 ~key ~current:2);
  check ci "old entry no longer pending" 0 (Weakmem.pending_count wm)

let test_natural_commit_supersedes_older () =
  (* Same property when the newer store drains by deadline instead of by
     an explicit fence. *)
  let wm = mk_relaxed ~max_delay:100 ~seed:5 () in
  let key = Weakmem.register wm 1 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:0;
  Weakmem.store wm ~cpu:1 ~now:1 ~key ~prev:1;
  Weakmem.commit_due wm ~now:10_000;
  check ci "everything visible after both deadlines" 2
    (Weakmem.read wm ~cpu:2 ~now:10_000 ~key ~current:2)

let test_register_disjoint () =
  let wm = mk_relaxed () in
  let a = Weakmem.register wm 100 in
  let b = Weakmem.register wm 50 in
  check cb "key ranges disjoint" true (b >= a + 100)

(* ------------------------------ Machine ------------------------------ *)

let test_machine_debt () =
  let m = Machine.testing () in
  Machine.charge m 100;
  Machine.charge m 50;
  check ci "debt accumulates without time passing" 0 (Machine.now m);
  Machine.flush m;
  check ci "flush spends debt" 150 (Machine.now m);
  Machine.flush m;
  check ci "flush idempotent" 150 (Machine.now m)

let test_machine_cas () =
  let m = Machine.testing () in
  Machine.cas m;
  Machine.cas m;
  check ci "cas counted" 2 m.Machine.cas_ops;
  Machine.flush m;
  check ci "cas charged" (2 * m.Machine.cost.Cost.cas) (Machine.now m)

let test_machine_fence_counts () =
  let m = Machine.testing () in
  Machine.fence m Fence.Alloc_batch;
  Machine.fence m Fence.Alloc_batch;
  Machine.fence m Fence.Packet_return;
  check ci "alloc batch fences" 2 (Fence.get m.Machine.fences Fence.Alloc_batch);
  check ci "packet fences" 1 (Fence.get m.Machine.fences Fence.Packet_return);
  check ci "total" 3 (Fence.total m.Machine.fences)

let test_fence_counters_reset () =
  let c = Fence.create () in
  Fence.count c Fence.Naive_mark;
  Fence.reset c;
  check ci "reset" 0 (Fence.total c)

let test_fence_site_names () =
  List.iter
    (fun s -> check cb "non-empty name" true (String.length (Fence.site_name s) > 0))
    Fence.all_sites

(* ------------------------------ Cost ------------------------------ *)

let test_cost_conversions () =
  let c = Cost.default in
  check cb "1ms round trip" true
    (abs_float (Cost.ms_of_cycles c (Cost.cycles_of_ms c 1.0) -. 1.0) < 1e-6);
  check ci "cycles_of_ms" c.Cost.cycles_per_ms (Cost.cycles_of_ms c 1.0)

(* Retention hygiene of the store-buffer kernel: after any schedule of
   stores, reads, fences and drains followed by a full drain, the
   pending heap must hold no live entry and every vacated slot must hold
   the dummy (the PR 9 heap-retention fix). *)
let weakmem_no_retention_test =
  QCheck.Test.make ~name:"weakmem: drained buffers retain nothing"
    ~count:200
    QCheck.(
      pair small_nat
        (small_list (quad (int_bound 3) (int_bound 31) (int_bound 40) bool)))
    (fun (seed, ops) ->
      let wm =
        Weakmem.create ~max_delay:30 ~mode:Weakmem.Relaxed
          ~rng:(Prng.create (succ seed)) ()
      in
      let base = Weakmem.register wm 32 in
      let now = ref 0 in
      List.iter
        (fun (cpu, key, dt, do_fence) ->
          now := !now + dt;
          Weakmem.store wm ~cpu ~now:!now ~key:(base + key) ~prev:cpu;
          ignore (Weakmem.read wm ~cpu:(3 - cpu) ~now:!now ~key:(base + key)
                    ~current:(-1));
          if do_fence then Weakmem.fence wm ~cpu ~now:!now)
        ops;
      Weakmem.fence_all wm;
      Weakmem.commit_due wm ~now:(!now + 10_000);
      Weakmem.pending_count wm = 0 && Weakmem.debug_heap_clean wm)

let test_read_after_drain () =
  (* The [live = 0] fast path must behave exactly like the slow path:
     once every pending store has drained, reads return the backing
     value for every cpu. *)
  let wm = mk_relaxed ~max_delay:10 ~seed:3 () in
  let key = Weakmem.register wm 1 in
  Weakmem.store wm ~cpu:0 ~now:0 ~key ~prev:5;
  Weakmem.fence wm ~cpu:0 ~now:1;
  check ci "no pending" 0 (Weakmem.pending_count wm);
  check ci "own cpu" 9 (Weakmem.read wm ~cpu:0 ~now:2 ~key ~current:9);
  check ci "remote cpu" 9 (Weakmem.read wm ~cpu:1 ~now:2 ~key ~current:9)

let () =
  Alcotest.run "smp"
    [
      ( "weakmem",
        [
          QCheck_alcotest.to_alcotest weakmem_no_retention_test;
          Alcotest.test_case "read fast path when drained" `Quick
            test_read_after_drain;
          Alcotest.test_case "sc transparent" `Quick test_sc_mode_transparent;
          Alcotest.test_case "own store visible" `Quick test_own_store_visible;
          Alcotest.test_case "remote store masked" `Quick test_remote_store_masked;
          Alcotest.test_case "fence publishes" `Quick test_fence_publishes;
          Alcotest.test_case "fence per-cpu" `Quick test_fence_only_own_cpu;
          Alcotest.test_case "fence_all" `Quick test_fence_all;
          Alcotest.test_case "natural drain" `Quick test_natural_drain;
          Alcotest.test_case "store-store reordering" `Quick
            test_store_store_reordering_occurs;
          Alcotest.test_case "per-location coherence" `Quick
            test_per_location_coherence;
          Alcotest.test_case "fenced store supersedes older (regression)"
            `Quick test_fenced_store_supersedes_older;
          Alcotest.test_case "natural commit supersedes older" `Quick
            test_natural_commit_supersedes_older;
          Alcotest.test_case "register disjoint" `Quick test_register_disjoint;
        ] );
      ( "machine",
        [
          Alcotest.test_case "debt/flush" `Quick test_machine_debt;
          Alcotest.test_case "cas accounting" `Quick test_machine_cas;
          Alcotest.test_case "fence counting" `Quick test_machine_fence_counts;
          Alcotest.test_case "fence reset" `Quick test_fence_counters_reset;
          Alcotest.test_case "fence site names" `Quick test_fence_site_names;
        ] );
      ("cost", [ Alcotest.test_case "conversions" `Quick test_cost_conversions ]);
    ]
