(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section, runs the ablation studies from DESIGN.md,
   and finishes with Bechamel micro-benchmarks of the collector's hot
   operations.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig1      # one experiment
     CGC_BENCH_FAST=1 dune exec bench/main.exe   # fast smoke sweep

   Targets: fig1 fig2 table1 table2 table3 table4 javac packetmem
            serverlat genlat clusterlat clusterchaos ablation-fence
            ablation-cardpass ablation-lazysweep ablation-steal
            ablation-compact itanium micro matrix all

   The matrix target additionally honours --out FILE (default
   BENCH_PR10.json), --trace-out FILE (Chrome trace of cell 0) and
   --jobs N (run cells on N OCaml 5 domains; simulated results are
   identical at every N, only host wall-clock changes).  --jobs also
   fans out the per-target experiment sweeps. *)

module E = Cgc_experiments

(* ------------------------- micro-benchmarks ------------------------- *)

open Bechamel
open Toolkit

let micro_tests () =
  let mach = Cgc_smp.Machine.testing () in
  let heap = Cgc_heap.Heap.create mach ~nslots:(1 lsl 20) in
  let pool = Cgc_packets.Pool.create mach ~n_packets:64 ~capacity:493 in
  let packet = Cgc_packets.Packet.make mach ~id:999 ~capacity:493 in
  let bits = Cgc_util.Bitvec.create (1 lsl 20) in
  (* a published object with refs to already-marked children, so scanning
     it repeatedly is a net no-op *)
  let parent =
    match Cgc_heap.Heap.alloc_large heap ~size:16 ~nrefs:4 ~mark_new:true with
    | Some a -> a
    | None -> assert false
  in
  for i = 0 to 3 do
    let child =
      match Cgc_heap.Heap.alloc_large heap ~size:8 ~nrefs:0 ~mark_new:true with
      | Some a -> a
      | None -> assert false
    in
    Cgc_heap.Arena.ref_set_raw (Cgc_heap.Heap.arena heap) parent i child
  done;
  let tracer =
    Cgc_core.Tracer.create Cgc_core.Config.default heap pool
  in
  let session = Cgc_core.Tracer.new_session tracer in
  let cards = Cgc_heap.Heap.cards heap in
  [
    Test.make ~name:"packet push+pop"
      (Staged.stage (fun () ->
           ignore (Cgc_packets.Packet.push packet 42);
           ignore (Cgc_packets.Packet.pop packet)));
    Test.make ~name:"pool get_output+put"
      (Staged.stage (fun () ->
           match Cgc_packets.Pool.get_output pool with
           | Some p -> Cgc_packets.Pool.put pool p
           | None -> ()));
    Test.make ~name:"write barrier (ref store + card dirty)"
      (Staged.stage (fun () ->
           Cgc_heap.Arena.ref_set_raw (Cgc_heap.Heap.arena heap) parent 0
             (parent + 16);
           Cgc_heap.Card_table.dirty cards
             (Cgc_heap.Arena.card_of_addr parent)));
    Test.make ~name:"mark bit test-and-set + clear"
      (Staged.stage (fun () ->
           ignore (Cgc_util.Bitvec.test_and_set bits 12345);
           Cgc_util.Bitvec.clear bits 12345));
    Test.make ~name:"bitvec next_set scan (1 Kslot)"
      (Staged.stage (fun () -> ignore (Cgc_util.Bitvec.next_set bits 500_000)));
    Test.make ~name:"tracer scan_object (4 marked children)"
      (Staged.stage (fun () ->
           ignore
             (Cgc_core.Tracer.scan_object tracer session ~retrace:true parent)));
    Test.make ~name:"card snapshot (empty table)"
      (Staged.stage (fun () ->
           ignore (Cgc_heap.Card_table.snapshot cards)));
  ]

let run_micro () =
  E.Common.hdr "Micro-benchmarks (Bechamel, host nanoseconds per operation)";
  let tests = Test.make_grouped ~name:"cgc" (micro_tests ()) in
  let quota = if E.Common.quick () then 0.2 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let t =
    Cgc_util.Table.create ~title:"" ~header:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | _ -> "n/a"
      in
      Cgc_util.Table.add_row t [ name; ns ])
    rows;
  Cgc_util.Table.print t

(* ----------------------------- dispatch ----------------------------- *)

let targets : (string * (unit -> unit)) list =
  [
    ("fig1", fun () -> ignore (E.Fig1_specjbb.run ()));
    ("fig2", fun () -> ignore (E.Fig2_pbob.run ()));
    ( "table1",
      fun () ->
        let s = E.Tables123.run_sweep () in
        E.Tables123.table1 s );
    ( "table2",
      fun () ->
        let s = E.Tables123.run_sweep () in
        E.Tables123.table2 s );
    ( "table3",
      fun () ->
        let s = E.Tables123.run_sweep () in
        E.Tables123.table3 s );
    ("table4", fun () -> ignore (E.Table4_load_balance.run ()));
    ("javac", fun () -> ignore (E.Javac_exp.run ()));
    ("packetmem", fun () -> ignore (E.Packet_memory.run ()));
    ("serverlat", fun () -> ignore (E.Server_latency.run ()));
    ("genlat", fun () -> ignore (E.Genlat.run ()));
    ("clusterlat", fun () -> ignore (E.Clusterlat.run ()));
    ("clusterchaos", fun () -> ignore (E.Clusterchaos.run ()));
    ("ablation-fence", fun () -> ignore (E.Ablations.fence_batching ()));
    ("ablation-cardpass", fun () -> ignore (E.Ablations.card_passes ()));
    ("ablation-lazysweep", fun () -> ignore (E.Ablations.lazy_sweep ()));
    ("ablation-steal", fun () -> ignore (E.Ablations.stealing ()));
    ("ablation-compact", fun () -> ignore (E.Ablations.compaction ()));
    ("itanium", fun () -> ignore (E.Ablations.itanium ()));
    ("micro", run_micro);
  ]

(* --out / --trace-out / --jobs for the matrix target. *)
let matrix_out = ref "BENCH_PR10.json"
let matrix_trace_out : string option ref = ref None
let jobs = ref 1

let run_all () =
  (* Tables 1-3 share one sweep when running everything. *)
  ignore (E.Fig1_specjbb.run ());
  ignore (E.Tables123.run ());
  ignore (E.Fig2_pbob.run ());
  ignore (E.Table4_load_balance.run ());
  ignore (E.Javac_exp.run ());
  ignore (E.Packet_memory.run ());
  ignore (E.Server_latency.run ());
  ignore (E.Genlat.run ());
  ignore (E.Clusterlat.run ());
  E.Ablations.run_all ();
  run_micro ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* Peel off the matrix options wherever they appear; what remains is
     the target list. *)
  let rec strip = function
    | "--out" :: v :: rest ->
        matrix_out := v;
        strip rest
    | "--trace-out" :: v :: rest ->
        matrix_trace_out := Some v;
        strip rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" v;
            exit 2);
        strip rest
    | x :: rest -> x :: strip rest
    | [] -> []
  in
  let names = strip args in
  E.Common.set_jobs !jobs;
  let targets =
    targets
    @ [
        ( "matrix",
          fun () ->
            Bench_matrix.run ~out:!matrix_out ?trace_out:!matrix_trace_out
              ~jobs:!jobs ()
        );
      ]
  in
  Printf.printf
    "CGC paper reproduction bench harness%s\n"
    (if E.Common.quick () then " (CGC_BENCH_FAST: shrunk sweeps)" else "");
  match names with
  | [] | [ "all" ] -> run_all ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown target %s; available: %s all\n" name
                (String.concat " " (List.map fst targets));
              exit 1)
        names
