(* The fixed benchmark matrix: workloads x thread counts x tracing rates,
   every cell traced and profiled, results written as one deterministic
   JSON document (schema cgcsim-bench-v1) — the benchmark trajectory the
   repo tracks across PRs.

     dune exec bench/main.exe -- matrix --jobs 4 --out BENCH_PR8.json \
         --trace-out bench-cell0.trace.json

   Cells are independent simulations (each owns its VM, machine, PRNG
   and event rings), so --jobs N fans them out over N OCaml 5 domains.
   Parallelism is host-side only: the simulated results and the cell
   order in the JSON are identical at every job count; only the
   host-timing fields (every key prefixed "host", so determinism diffs
   can exclude them with a single filter) change between runs.

   Cells run without a warm-up window so the trace covers the run from
   cycle 0 and the derived metrics account for every event.  The harness
   *fails* (exit 1, after writing the file) if any cell dropped events to
   ring overflow: a truncated trace silently skews every derived metric,
   so drops are a configuration bug — raise the per-cell ring capacity or
   shrink the simulated window. *)

module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config
module Obs = Cgc_obs.Obs
module Analysis = Cgc_prof.Analysis
module Sampler = Cgc_prof.Sampler
module Series = Cgc_prof.Series
module Json = Cgc_prof.Json
module Server = Cgc_server.Server
module Server_report = Cgc_server.Report
module Cluster = Cgc_cluster.Cluster
module Cluster_report = Cgc_cluster.Report
module Shard = Cgc_cluster.Shard
module Cluster_fault = Cgc_fault.Cluster_fault

let bench_schema = "cgcsim-bench-v1"

type cell = {
  workload : string;
  warehouses : int;
  k0 : float;
  rate : float;  (* offered req/s; serve and cluster cells only *)
  shards : int;  (* cluster cells only *)
  chaos : Cluster_fault.scenario option;  (* cluster cells only *)
  gc_mode : Config.mode;  (* the --gc axis: Cgc, Stw or Gen *)
  ms : float;
  ring : int;  (* per-thread event-ring capacity *)
}

let cell_label c =
  let base =
    match c.workload with
    | "serve" -> Printf.sprintf "serve-%.0frps" c.rate
    | "cluster" -> (
        let base = Printf.sprintf "cluster-%dsh-%.0frps" c.shards c.rate in
        match c.chaos with
        | None -> base
        | Some sc -> base ^ "-" ^ Cluster_fault.to_name sc)
    | _ -> Printf.sprintf "%s-%dwh-k0=%.0f" c.workload c.warehouses c.k0
  in
  if c.gc_mode = Config.Cgc then base
  else base ^ "-" ^ Config.mode_name c.gc_mode

(* SPECjbb cells get deep rings (a dozen threads saturating 4 CPUs emit
   a lot); pBOB cells spread far fewer events over hundreds of threads,
   and rings are preallocated per thread, so theirs stay shallow. *)
let matrix () =
  let rates = if Cgc_experiments.Common.quick () then [ 8.0 ] else [ 4.0; 8.0; 12.0 ] in
  let ms = if Cgc_experiments.Common.quick () then 800.0 else 1500.0 in
  let spec wh =
    List.map
      (fun k0 ->
        { workload = "specjbb"; warehouses = wh; k0; rate = 0.0; shards = 0;
          chaos = None; gc_mode = Config.Cgc; ms; ring = 1 lsl 18 })
      rates
  in
  let pbob wh =
    List.map
      (fun k0 ->
        { workload = "pbob"; warehouses = wh; k0; rate = 0.0; shards = 0;
          chaos = None; gc_mode = Config.Cgc; ms; ring = 1 lsl 17 })
      rates
  in
  (* Open-loop server cells (the PR 5 subsystem): CGC at the default
     tracing rate under increasing offered load.  The gen cells run the
     same server on the generational front end (PR 10) at the same total
     heap budget, so the cell pair is a direct nursery-vs-no-nursery
     comparison with per-cell minor/major pause counts in the JSON. *)
  let serve ?(mode = Config.Cgc) rate =
    { workload = "serve"; warehouses = 0; k0 = 8.0; rate; shards = 0;
      chaos = None; gc_mode = mode; ms; ring = 1 lsl 17 }
  in
  (* Sharded-cluster cells (the PR 6 subsystem): shard count x offered
     fleet load, round-robin routing.  Untraced — a cluster cell's cost
     is its shard simulations, and its artefact is the embedded
     cgcsim-cluster-v3 fleet report.  The chaos cells (PR 7) track the
     failover path: availability and retry counts under a deterministic
     shard restart live in the embedded report's chaos block. *)
  let cluster ?chaos shards rate =
    { workload = "cluster"; warehouses = 0; k0 = 8.0; rate; shards; chaos;
      gc_mode = Config.Cgc; ms; ring = 1 lsl 17 }
  in
  if Cgc_experiments.Common.quick () then
    spec 4 @ pbob 8
    @ [ serve 6000.0; serve ~mode:Config.Gen 6000.0; cluster 2 6000.0;
        cluster ~chaos:Cluster_fault.Shard_restart 2 6000.0 ]
  else
    spec 4 @ spec 8 @ pbob 8 @ pbob 16
    @ [ serve 4000.0; serve 8000.0;
        serve ~mode:Config.Gen 4000.0; serve ~mode:Config.Gen 8000.0 ]
    @ [ cluster 4 8000.0; cluster 4 16000.0; cluster 8 16000.0;
        cluster 8 32000.0;
        cluster ~chaos:Cluster_fault.Shard_restart 4 16000.0;
        cluster ~chaos:Cluster_fault.Ring_flap 8 16000.0 ]

(* A finished cell is either one VM (possibly with a server attached) or
   a whole fleet result. *)
type ran = Sim of Vm.t * Server.t option | Fleet of Cluster.result

let run_cell c =
  let base =
    match c.gc_mode with
    | Config.Cgc -> Config.default
    | Config.Stw -> Config.stw
    | Config.Gen -> Config.gen
  in
  let gc = { base with Config.k0 = c.k0 } in
  match c.workload with
  | "cluster" ->
      (* The fleet draws on the same domain pool as the matrix itself;
         the nested batch runs inline on this cell's domain. *)
      (* 16 MB per shard, like the serve cells: the short window must
         contain GC cycles for the fleet report to say anything. *)
      let cfg =
        Cluster.cfg ~shards:c.shards ~rate_per_s:c.rate ~gc ~slo_ms:50.0
          ~heap_mb:16.0 ~ms:c.ms ?chaos:c.chaos ()
      in
      Fleet (Cluster.run cfg)
  | _ ->
  let vm, srv =
    match c.workload with
    | "specjbb" ->
        ( Cgc_workloads.Specjbb.setup ~warehouses:c.warehouses ~gc ~heap_mb:48.0
            ~ncpus:4 ~seed:1 ~trace:true ~trace_ring:c.ring (),
          None )
    | "pbob" ->
        (* Short think time and a small heap so the cell reaches several
           GC cycles inside the window while keeping the idle fraction
           that lets the background tracers participate. *)
        ( Cgc_workloads.Pbob.setup ~warehouses:c.warehouses ~gc ~terminals:10
            ~heap_mb:32.0 ~ncpus:4 ~seed:1 ~trace:true ~trace_ring:c.ring
            ~think_mean:1_100_000 ~residency_at:(16, 0.5) (),
          None )
    | "serve" ->
        (* Smaller heap than the warehouse cells so the short window
           still contains GC cycles (and their latency inflation). *)
        let vm =
          Vm.create
            (Vm.config ~heap_mb:16.0 ~ncpus:4 ~seed:1 ~gc ~trace:true
               ~trace_ring:c.ring ())
        in
        let scfg =
          Server.cfg ~rate_per_s:c.rate ~queue_cap:256 ~workers:4 ~slo_ms:50.0
            ()
        in
        (vm, Some (Server.create scfg vm))
    | w -> invalid_arg ("bench matrix: unknown workload " ^ w)
  in
  Vm.enable_profiler vm;
  Option.iter Server.attach_probes srv;
  Vm.run vm ~ms:c.ms;
  Sim (vm, srv)

let sampler_json vm =
  match Vm.profiler vm with
  | None -> Json.Null
  | Some p ->
      let stat name =
        match Sampler.find p name with
        | None -> []
        | Some s ->
            [
              (name ^ "Mean", Json.Float (Series.mean s));
              (name ^ "Max", Json.Float (Series.max s));
            ]
      in
      Json.Obj
        (("ticks", Json.Int (Sampler.ticks p))
        :: (stat "pool-in-use" @ stat "cards-dirty" @ stat "mutators-running"
          @ stat "server-queue-depth" @ stat "server-in-flight"))

let cell_json c vm srv =
  let o = Vm.obs vm in
  let a =
    Analysis.analyse_events ~cycles_per_us:(Vm.cycles_per_us vm)
      (Obs.events_array o)
  in
  let bal = a.Analysis.balance and p = a.Analysis.pauses in
  let json =
    Json.Obj
      [
        ("workload", Json.Str c.workload);
        ("warehouses", Json.Int c.warehouses);
        ("gcMode", Json.Str (Config.mode_name c.gc_mode));
        ("k0", Json.Float c.k0);
        ("ms", Json.Float c.ms);
        ("seed", Json.Int 1);
        ("throughput", Json.Float (Vm.throughput vm));
        ("transactions", Json.Int (Vm.total_transactions vm));
        ("gcCycles", Json.Int a.Analysis.n_cycles);
        ("events", Json.Int a.Analysis.n_events);
        ("emitted", Json.Int (Obs.emitted o));
        ("dropped", Json.Int (Obs.dropped o));
        ( "mmu",
          Json.Arr
            (List.map
               (fun (m : Analysis.mmu_point) ->
                 Json.Obj
                   [
                     ("windowMs", Json.Float m.window_ms);
                     ("min", Json.Float m.mmu);
                     ("avg", Json.Float m.avg_util);
                     ("windows", Json.Int m.n_windows);
                   ])
               a.Analysis.mmu) );
        ( "pauses",
          Json.Obj
            [
              ("count", Json.Int p.pause_count);
              ("meanMs", Json.Float p.pause_mean_ms);
              ("p50Ms", Json.Float p.pause_p50_ms);
              ("p90Ms", Json.Float p.pause_p90_ms);
              ("p99Ms", Json.Float p.pause_p99_ms);
              ("maxMs", Json.Float p.pause_max_ms);
            ] );
        (* Per-generation decomposition: "pauses" above counts the
           world-stopping major pauses, this block the one-mutator minor
           pauses.  All-zero for non-gen cells. *)
        ( "minorPauses",
          Json.Obj
            [
              ("count", Json.Int a.Analysis.gen.Analysis.minor_count);
              ("meanMs", Json.Float a.Analysis.gen.Analysis.minor_mean_ms);
              ("p99Ms", Json.Float a.Analysis.gen.Analysis.minor_p99_ms);
              ("maxMs", Json.Float a.Analysis.gen.Analysis.minor_max_ms);
              ( "promotedSlots",
                Json.Int a.Analysis.gen.Analysis.promoted_slots );
            ] );
        ( "loadBalance",
          Json.Obj
            [
              ("busyStddevMs", Json.Float bal.busy_stddev_ms);
              ("busyCv", Json.Float bal.busy_cv);
              ("slotsCv", Json.Float bal.slots_cv);
              ("factorMean", Json.Float bal.factor_mean);
              ("factorStddev", Json.Float bal.factor_stddev);
              ("fairness", Json.Float bal.fairness);
            ] );
        ("sampler", sampler_json vm);
        ( "server",
          match srv with
          | None -> Json.Null
          | Some s ->
              Server_report.to_json (Server.the_cfg s) ~ran_ms:c.ms
                (Server.totals s) );
      ]
  in
  (json, Obs.dropped o, a)

(* Everything a finished cell contributes, computed inside the worker
   domain so the (large) VM never escapes it. *)
type cell_result = {
  json : Json.t;  (* the cell's entry in the document, hostMs included *)
  drops : int;
  emitted : int;  (* events accepted by the cell's rings (fleet: summed) *)
  row : string list;  (* the progress table row *)
  trace : string option;  (* Chrome trace, kept for cell 0 only *)
  host_ms : float;
}

(* The committed PR 8 baseline this build is compared against.  The
   full and fast matrices run different sweeps, so each carries its own
   baseline file; [CGC_BASELINE] overrides the path (set it to an empty
   string to skip the comparison, e.g. on CI hosts whose absolute speed
   is not comparable to the machine that recorded the baseline). *)
let baseline_path () =
  match Sys.getenv_opt "CGC_BASELINE" with
  | Some p -> if p = "" then None else Some p
  | None ->
      Some
        (if Cgc_experiments.Common.quick () then
           "bench/baselines/BENCH_PR8.fast.json"
         else "bench/baselines/BENCH_PR8.json")

(* Pull one "key": <float> field out of a baseline document without a
   JSON parser: the files are machine-written by [Json.to_string], so a
   textual scan for the quoted key is reliable. *)
let scan_float_field path key =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let needle = "\"" ^ key ^ "\":" in
    let nlen = String.length needle in
    let rec find i =
      if i + nlen > len then None
      else if String.sub s i nlen = needle then begin
        let j = ref (i + nlen) in
        while !j < len && (s.[!j] = ' ' || s.[!j] = '\n') do incr j done;
        let k = ref !j in
        while
          !k < len
          && (match s.[!k] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr k
        done;
        float_of_string_opt (String.sub s !j (!k - !j))
      end
      else find (i + 1)
    in
    find 0
  end

let run ?(out = "BENCH_PR10.json") ?trace_out ?(jobs = 1) () =
  Cgc_experiments.Common.hdr "Benchmark matrix (cgcsim-bench-v1)";
  let cells = matrix () in
  let ncells = List.length cells in
  Printf.printf "%d cells, %s mode, %d job%s\n%!" ncells
    (if Cgc_experiments.Common.quick () then "smoke" else "full")
    (max 1 jobs)
    (if max 1 jobs = 1 then "" else "s");
  Cgc_experiments.Common.set_jobs jobs;
  let wall0 = Unix.gettimeofday () in
  let results =
    Cgc_experiments.Common.par_map
      ~progress:(fun _ (i, c) ->
        Printf.printf "[%d/%d] %s...\n%!" (i + 1) ncells (cell_label c))
      (List.mapi (fun i c -> (i, c)) cells)
      (fun (i, c) ->
        let label = cell_label c in
        let t0 = Unix.gettimeofday () in
        let ran = run_cell c in
        let host_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
        match ran with
        | Sim (vm, srv) ->
            let trace =
              if i = 0 && trace_out <> None then Some (Vm.trace_json vm)
              else None
            in
            let json, drops, a = cell_json c vm srv in
            let emitted = Obs.emitted (Vm.obs vm) in
            let json =
              match json with
              | Json.Obj fields ->
                  Json.Obj
                    (fields
                    @ [
                        ("hostMs", Json.Float host_ms);
                        ( "hostEventsPerS",
                          Json.Float
                            (if host_ms > 0.0 then
                               1000.0 *. float_of_int emitted /. host_ms
                             else 0.0) );
                      ])
              | j -> j
            in
            let mmu20 =
              match
                List.find_opt
                  (fun (p : Analysis.mmu_point) -> p.Analysis.window_ms = 20.0)
                  a.Analysis.mmu
              with
              | Some p -> p.Analysis.mmu
              | None -> 0.0
            in
            let row =
              [ label;
                Printf.sprintf "%.0f" (Vm.throughput vm);
                string_of_int a.Analysis.n_cycles;
                Cgc_util.Table.fpct mmu20;
                Cgc_util.Table.f2 a.Analysis.pauses.Analysis.pause_p99_ms;
                Cgc_util.Table.f3 a.Analysis.balance.Analysis.factor_mean;
                Cgc_util.Table.f3 a.Analysis.balance.Analysis.fairness;
                string_of_int drops ]
            in
            { json; drops; emitted; row; trace; host_ms }
        | Fleet r ->
            let tot = Cluster.fleet_totals r in
            let sum f = Array.fold_left (fun acc s -> acc + f s) 0 r.Cluster.shards in
            let drops = sum (fun s -> s.Shard.dropped) in
            let emitted = sum (fun s -> s.Shard.emitted) in
            let cycles = sum (fun s -> s.Shard.gc_cycles) in
            let max_pause =
              Array.fold_left
                (fun acc (s : Shard.result) ->
                  Float.max acc s.Shard.max_pause_ms)
                0.0 r.Cluster.shards
            in
            let json =
              Json.Obj
                [
                  ("workload", Json.Str c.workload);
                  ("shards", Json.Int c.shards);
                  ( "chaos",
                    match c.chaos with
                    | None -> Json.Null
                    | Some sc -> Json.Str (Cluster_fault.to_name sc) );
                  ("ratePerS", Json.Float c.rate);
                  ("ms", Json.Float c.ms);
                  ("seed", Json.Int 1);
                  ("gcCycles", Json.Int cycles);
                  ("dropped", Json.Int drops);
                  ("cluster", Cluster_report.to_json r);
                  ("hostMs", Json.Float host_ms);
                  ( "hostEventsPerS",
                    Json.Float
                      (if host_ms > 0.0 then
                         1000.0 *. float_of_int emitted /. host_ms
                       else 0.0) );
                ]
            in
            let row =
              [ label;
                Printf.sprintf "%.0f"
                  (float_of_int tot.Server.completed /. (c.ms /. 1000.0));
                string_of_int cycles;
                "-";
                Cgc_util.Table.f2 max_pause;
                "-";
                "-";
                string_of_int drops ]
            in
            { json; drops; emitted; row; trace = None; host_ms })
  in
  let host_wall_ms = 1000.0 *. (Unix.gettimeofday () -. wall0) in
  (match (trace_out, results) with
  | Some file, { trace = Some trace; _ } :: _ ->
      Cgc_obs.Export.write_file file trace;
      Printf.printf "cell-0 trace written to %s\n%!" file
  | _ -> ());
  let t = Cgc_util.Table.create ~title:""
      ~header:[ "cell"; "tx/s"; "cycles"; "MMU 20ms"; "p99 pause"; "factor";
                "fairness"; "dropped" ]
  in
  List.iter (fun r -> Cgc_util.Table.add_row t r.row) results;
  Cgc_util.Table.print t;
  let total_drops = List.fold_left (fun acc r -> acc + r.drops) 0 results in
  let host_serial_ms =
    List.fold_left (fun acc r -> acc +. r.host_ms) 0.0 results
  in
  (* Host event throughput: the perf-smoke signal.  Simulated event
     counts are deterministic, so dividing by host wall time isolates
     host-side regressions (the field is host-prefixed and therefore
     excluded from determinism diffs). *)
  let total_emitted =
    List.fold_left (fun acc r -> acc + r.emitted) 0 results
  in
  let host_events_per_s =
    if host_wall_ms > 0.0 then
      1000.0 *. float_of_int total_emitted /. host_wall_ms
    else 0.0
  in
  (* Compare against the committed PR 8 baseline recorded on the same
     matrix.  Both extra fields are host-prefixed, so determinism diffs
     drop them along with the other wall-clock fields. *)
  let baseline_eps =
    match baseline_path () with
    | None -> None
    | Some p -> scan_float_field p "hostEventsPerSec"
  in
  let speedup_fields =
    match baseline_eps with
    | Some b when b > 0.0 ->
        [
          ("hostBaselineEventsPerSec", Json.Float b);
          ("hostSpeedupVsPr8", Json.Float (host_events_per_s /. b));
        ]
    | _ -> []
  in
  let doc =
    Json.Obj
      ([
         ("schema", Json.Str bench_schema);
         ("fast", Json.Bool (Cgc_experiments.Common.quick ()));
         (* Host-timing fields all start with "host" so a determinism
            diff can drop them with one grep filter on the key prefix. *)
         ("hostJobs", Json.Int (max 1 jobs));
         ("hostWallMs", Json.Float host_wall_ms);
         ("hostSerialEstMs", Json.Float host_serial_ms);
         ("hostEventsPerSec", Json.Float host_events_per_s);
         ( "hostSpeedup",
           Json.Float
             (if host_wall_ms > 0.0 then host_serial_ms /. host_wall_ms
              else 0.0) );
       ]
      @ speedup_fields
      @ [ ("cells", Json.Arr (List.map (fun r -> r.json) results)) ])
  in
  Cgc_obs.Export.write_file out (Json.to_string ~pretty:true doc);
  (match baseline_eps with
  | Some b when b > 0.0 ->
      let ratio = host_events_per_s /. b in
      let table =
        Printf.sprintf
          "# Benchmark matrix: before / after\n\n\
           | | PR 8 baseline | this build |\n\
           |---|---|---|\n\
           | host events/sec | %.0f | %.0f |\n\
           | matrix wall | %.1f s | %.1f s |\n\n\
           Speedup vs committed baseline: **%.2fx** (`hostSpeedupVsPr8`).\n\
           Simulated outputs are byte-identical; only host-prefixed\n\
           wall-clock fields differ between the two runs.\n"
          b host_events_per_s
          (1000.0 *. float_of_int total_emitted /. b /. 1000.0)
          (host_wall_ms /. 1000.0)
          ratio
      in
      let table_path = Filename.concat (Filename.dirname out) "PERF_TABLE.md" in
      Cgc_obs.Export.write_file table_path table;
      Printf.printf "speedup vs PR 8 baseline: %.2fx (table in %s)\n%!" ratio
        table_path
  | _ -> ());
  Printf.printf
    "benchmark matrix written to %s (%.1f s wall, %.1f s serial estimate, \
     %.2fx)\n"
    out (host_wall_ms /. 1000.0) (host_serial_ms /. 1000.0)
    (if host_wall_ms > 0.0 then host_serial_ms /. host_wall_ms else 0.0);
  if total_drops > 0 then begin
    Printf.eprintf
      "bench: FAIL — %d events dropped by ring overflow across the matrix; \
       derived metrics are untrustworthy (raise ring capacities or shrink \
       the windows)\n"
      total_drops;
    exit 1
  end
