(* cgcsim — command-line driver for the collector simulator.

   Run a workload under either collector with custom parameters and print
   the VM report:

     dune exec bin/cgcsim.exe -- run --workload specjbb --collector cgc \
       --warehouses 8 --heap-mb 64 --ms 4000 --tracing-rate 8

   Or run one of the paper-reproduction experiments:

     dune exec bin/cgcsim.exe -- experiment fig1 *)

open Cmdliner

module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config
module Collector = Cgc_core.Collector
module Verify = Cgc_core.Verify
module Fault = Cgc_fault.Fault
module Cluster_fault = Cgc_fault.Cluster_fault
module Exit_codes = Cgc_cli.Exit_codes

(* Parse the --inject argument: a comma-separated list of scenario names,
   or "all". *)
let parse_scenarios s =
  if s = "all" then Ok Fault.all
  else
    let names = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match Fault.of_name (String.trim n) with
          | Some sc -> go (sc :: acc) rest
          | None ->
              Error
                (Printf.sprintf
                   "unknown fault scenario %S (known: %s, or \"all\")" n
                   (String.concat ", " (List.map Fault.to_name Fault.all))))
    in
    go [] names

(* The --help scenario listings are generated from the injector modules
   themselves, so a scenario added there shows up in the docs without a
   second edit here. *)
let inject_doc =
  Printf.sprintf
    "Arm the deterministic fault injector with a comma-separated list of \
     scenarios, or $(b,all).  Scenarios: %s."
    (String.concat "; "
       (List.map
          (fun sc ->
            Printf.sprintf "$(b,%s) (%s)" (Fault.to_name sc)
              (Fault.describe sc))
          Fault.all))

let chaos_doc =
  Printf.sprintf
    "Arm one deterministic fleet chaos scenario (seeded by \
     $(b,--chaos-seed)): %s."
    (String.concat "; "
       (List.map
          (fun sc ->
            Printf.sprintf "$(b,%s) (%s)"
              (Cluster_fault.to_name sc)
              (Cluster_fault.describe sc))
          Cluster_fault.all))

(* Top-level catch for the typed failure modes: a diagnosed out-of-memory
   (the degradation ladder was exhausted), an invariant violation from
   the --verify checker, and a fleet whose own degradation ladder
   bottomed out all exit nonzero with the diagnostic record
   pretty-printed instead of an uncaught-exception backtrace. *)
let catching_failures f =
  try f () with
  | Collector.Out_of_memory d ->
      Printf.eprintf "cgcsim: %s\n" (Collector.oom_to_string d);
      exit Exit_codes.oom
  | Verify.Invariant_violation msg ->
      Printf.eprintf "cgcsim: heap invariant violated: %s\n" msg;
      exit Exit_codes.invariant
  | Cgc_cluster.Cluster.Fleet_unavailable d ->
      Printf.eprintf "cgcsim: %s\n"
        (Cgc_cluster.Cluster.unavailable_to_string d);
      exit Exit_codes.fleet

(* Turn an unwritable output path into a clean CLI error instead of an
   uncaught Sys_error. *)
let write_or_die what write file =
  try write file
  with Sys_error msg ->
    Printf.eprintf "cgcsim: cannot write %s: %s\n" what msg;
    exit Exit_codes.usage

(* The --gc axis: one spelling, three collectors.  [Config.mode_of_name]
   is the single source of truth for the names, so the CLI, the bench
   matrix and the experiment tables can never drift apart. *)
let gc_doc =
  "Collector: cgc (mostly-concurrent), gen (nursery + minor collections \
   over cgc) or stw (baseline)."

let gc_base name =
  match Config.mode_of_name name with
  | Some Config.Cgc -> Config.default
  | Some Config.Stw -> Config.stw
  | Some Config.Gen -> Config.gen
  | None ->
      Printf.eprintf "cgcsim: unknown collector %s (cgc|gen|stw)\n" name;
      exit Exit_codes.usage

let run_cmd =
  let workload =
    let doc = "Workload: specjbb, pbob or javac." in
    Arg.(value & opt string "specjbb" & info [ "workload"; "w" ] ~doc)
  in
  let collector =
    Arg.(value & opt string "cgc" & info [ "gc"; "collector"; "c" ] ~doc:gc_doc)
  in
  let warehouses =
    Arg.(value & opt int 8 & info [ "warehouses" ] ~doc:"Warehouse count.")
  in
  let heap_mb =
    Arg.(value & opt float 64.0 & info [ "heap-mb" ] ~doc:"Simulated heap size (MB).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"Simulated CPUs.") in
  let ms =
    Arg.(value & opt float 4000.0 & info [ "ms" ] ~doc:"Simulated milliseconds to run.")
  in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0.")
  in
  let n_background =
    Arg.(value & opt int 4 & info [ "background" ] ~doc:"Background GC threads.")
  in
  let packets =
    Arg.(value & opt int 1000 & info [ "packets" ] ~doc:"Work packets in the pool.")
  in
  let lazy_sweep =
    Arg.(value & flag & info [ "lazy-sweep" ] ~doc:"Sweep outside the pause (section 7).")
  in
  let compaction =
    Arg.(value & flag & info [ "compaction" ] ~doc:"Evacuate one heap area per cycle (section 2.3).")
  in
  let card_passes =
    Arg.(value & opt int 1 & info [ "card-passes" ] ~doc:"Concurrent card-cleaning passes.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SCENARIOS" ~doc:inject_doc)
  in
  let fault_seed =
    let doc = "Seed for the fault injector (default: the run seed)." in
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~doc)
  in
  let verify =
    let doc =
      "Run the heap invariant verifier at every GC cycle boundary; exit \
       nonzero on the first violation."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let trace_out =
    let doc =
      "Write a Chrome trace-event JSON file (load in Perfetto or \
       chrome://tracing).  Arms the event-tracing sink for the run."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc = "Write per-GC-cycle metrics to $(docv) as CSV." in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let exec workload collector warehouses heap_mb ncpus ms tracing_rate
      n_background packets lazy_sweep compaction card_passes seed inject
      fault_seed verify trace_out metrics_out =
    let faults =
      match inject with
      | None -> Fault.disabled
      | Some spec -> (
          match parse_scenarios spec with
          | Ok scenarios ->
              let seed =
                match fault_seed with Some s -> s | None -> seed
              in
              Fault.create ~scenarios ~seed ()
          | Error msg ->
              Printf.eprintf "cgcsim: %s\n" msg;
              exit Exit_codes.usage)
    in
    let base = gc_base collector in
    (if base.Config.mode = Config.Gen && (compaction || lazy_sweep) then begin
       Printf.eprintf
         "cgcsim: --gc gen composes with neither --compaction nor \
          --lazy-sweep (the nursery owns the top of the arena)\n";
       exit Exit_codes.usage
     end);
    let gc =
      {
        base with
        Config.k0 = tracing_rate;
        n_background;
        n_packets = packets;
        lazy_sweep;
        compaction;
        card_passes;
        faults;
        verify;
      }
    in
    let trace = trace_out <> None in
    let vm =
      catching_failures (fun () ->
          match workload with
          | "specjbb" ->
              Cgc_workloads.Specjbb.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                ~trace ~ms ()
          | "pbob" ->
              Cgc_workloads.Pbob.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                ~trace ~ms ()
          | "javac" ->
              Cgc_workloads.Javac.run ~gc ~heap_mb ~ncpus ~seed ~trace ~ms ()
          | w ->
              Printf.eprintf "unknown workload %s (specjbb|pbob|javac)\n" w;
              exit Exit_codes.usage)
    in
    Vm.print_report vm;
    (match trace_out with
    | Some file ->
        write_or_die "trace" (Vm.write_trace vm) file;
        Printf.printf "trace written to %s\n" file
    | None -> ());
    match metrics_out with
    | Some file ->
        write_or_die "metrics" (Vm.write_metrics vm) file;
        Printf.printf "per-cycle metrics written to %s\n" file
    | None -> ()
  in
  let info =
    Cmd.info "run" ~doc:"Run a workload under the simulated collector."
  in
  Cmd.v info
    Term.(
      const exec $ workload $ collector $ warehouses $ heap_mb $ ncpus $ ms
      $ tracing_rate $ n_background $ packets $ lazy_sweep $ compaction
      $ card_passes $ seed $ inject $ fault_seed $ verify $ trace_out
      $ metrics_out)

(* ------------------------------------------------------------------ *)
(* cgcsim analyze — the offline profiler.

   Three sources, one output: derived metrics (MMU curves, load-balance
   quality, pause distribution, per-event attribution) as text tables
   and optionally as versioned JSON.

     cgcsim analyze --trace trace.json            # a written trace file
     cgcsim analyze --trace fleet                 # fleet.shard*.json traces
     cgcsim analyze --metrics runs.csv            # schema-check a CSV dump
     cgcsim analyze --workload specjbb --ms 1000  # run, then analyze live
     cgcsim analyze --report fleet.json --tails 8 # worst-span forensics
     cgcsim analyze --report fleet.json --lbo     # distilled GC cost
     cgcsim analyze --bench BENCH.json --lbo      # distill a bench matrix

   When --trace names no file, it is treated as a cluster --trace-out
   prefix and every PREFIX.shard<K>.json / PREFIX.shard<K>.r<I>.json
   trace is analyzed in turn (--fail-on-drops then covers all of them).

   Exit codes: 4 = unreadable/incompatible input (schema mismatch or a
   broken blame-conservation identity), 5 = the input lost events to
   ring overflow and --fail-on-drops was given. *)

module Analysis = Cgc_prof.Analysis
module Prof_report = Cgc_prof.Report
module Json = Cgc_prof.Json
module Tails = Cgc_prof.Tails
module Export = Cgc_obs.Export
module Obs = Cgc_obs.Obs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let known_csv_schemas =
  [ Vm.cycles_schema; Cgc_experiments.Common.runs_schema ]

let analyze_cmd =
  let trace_in =
    let doc =
      "Analyze a Chrome trace-event JSON file written by $(b,run \
       --trace-out) (or $(b,bench)).  If $(docv) is not a file it is \
       treated as a $(b,cluster --trace-out) prefix and every \
       $(docv).shard<K>.json trace is analyzed."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let report_in =
    let doc =
      "Tail forensics on a serialised report ($(b,serve --json) or \
       $(b,cluster --json), any supported schema version): re-check the \
       blame conservation identity, then print the fleet blame \
       decomposition and the worst-request causal chains."
    in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let bench_in =
    let doc =
      "Distill the LBO GC cost from a $(b,cgcsim-bench-v1) document \
       (requires $(b,--lbo))."
    in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"FILE" ~doc)
  in
  let tails_n =
    let doc = "How many worst-request causal chains to show (with --report)." in
    Arg.(value & opt int 16 & info [ "tails" ] ~docv:"N" ~doc)
  in
  let lbo =
    let doc =
      "Report the LBO-distilled GC cost: each cell's fractional latency \
       (or throughput) distance above its group's lower-bound baseline."
    in
    Arg.(value & flag & info [ "lbo" ] ~doc)
  in
  let metrics_in =
    let doc =
      "Validate a metrics CSV file ($(b,run --metrics-out) or \
       $(b,experiment --metrics-out)) against its $(b,#schema=) line and \
       summarise it."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let workload =
    let doc = "Run this workload with tracing armed and analyze it live (specjbb|pbob|javac)." in
    Arg.(value & opt (some string) None & info [ "workload"; "w" ] ~doc)
  in
  let warehouses =
    Arg.(value & opt int 8 & info [ "warehouses" ] ~doc:"Warehouse count (live run).")
  in
  let heap_mb =
    Arg.(value & opt float 64.0 & info [ "heap-mb" ] ~doc:"Heap size MB (live run).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"CPUs (live run).") in
  let ms = Arg.(value & opt float 1000.0 & info [ "ms" ] ~doc:"Simulated ms (live run).") in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0 (live run).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed (live run).") in
  let trace_ring =
    Arg.(
      value
      & opt int (1 lsl 17)
      & info [ "trace-ring" ] ~doc:"Per-thread event-ring capacity (live run).")
  in
  let mmu_windows =
    let doc = "Comma-separated MMU window sizes in ms (default 1,5,20,50)." in
    Arg.(value & opt (some string) None & info [ "mmu-windows" ] ~docv:"MS,MS,..." ~doc)
  in
  let json_out =
    let doc = "Also write the analysis as $(b,cgcsim-analysis-v1) JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let fail_on_drops =
    let doc =
      "Exit 5 if the analyzed trace lost any events to ring overflow — \
       derived metrics from a truncated trace are not trustworthy."
    in
    Arg.(value & flag & info [ "fail-on-drops" ] ~doc)
  in
  let exec trace_in report_in bench_in tails_n lbo metrics_in workload
      warehouses heap_mb ncpus ms tracing_rate seed trace_ring mmu_windows
      json_out fail_on_drops =
    let mmu_windows_ms =
      match mmu_windows with
      | None -> None
      | Some spec -> (
          try
            Some
              (List.map
                 (fun s -> float_of_string (String.trim s))
                 (String.split_on_char ',' spec))
          with Failure _ ->
            Printf.eprintf "cgcsim: bad --mmu-windows %S\n" spec;
            exit Exit_codes.usage)
    in
    let finish ~label ~emitted ~dropped events cycles_per_us =
      let a = Analysis.analyse_events ?mmu_windows_ms ~cycles_per_us events in
      print_string (Prof_report.summary ~dropped a);
      (match json_out with
      | Some file ->
          write_or_die "analysis JSON"
            (fun f ->
              Export.write_file f
                (Json.to_string ~pretty:true
                   (Prof_report.to_json ~label ~emitted ~dropped a)))
            file;
          Printf.printf "analysis written to %s\n" file
      | None -> ());
      if fail_on_drops && dropped > 0 then begin
        Printf.eprintf
          "cgcsim: %d events dropped by ring overflow (--fail-on-drops)\n"
          dropped;
        exit Exit_codes.drops
      end
    in
    let analyze_trace_file ~label file =
      let contents =
        try read_file file
        with Sys_error msg ->
          Printf.eprintf "cgcsim: cannot read %s: %s\n" file msg;
          exit Exit_codes.schema
      in
      match Export.parse_chrome_json contents with
      | Error msg ->
          Printf.eprintf "cgcsim: %s: %s\n" file msg;
          exit Exit_codes.schema
      | Ok (meta, events) ->
          finish ~label ~emitted:meta.Export.emitted
            ~dropped:meta.Export.dropped (Array.of_list events)
            meta.Export.cycles_per_us
    in
    (* Expand a cluster --trace-out prefix into its per-incarnation
       trace files, sorted so the order is deterministic. *)
    let expand_trace_prefix prefix =
      let dir = Filename.dirname prefix in
      let base = Filename.basename prefix ^ ".shard" in
      let names = try Sys.readdir dir with Sys_error _ -> [||] in
      let matches =
        List.filter
          (fun n ->
            String.length n > String.length base
            && String.sub n 0 (String.length base) = base
            && Filename.check_suffix n ".json")
          (Array.to_list names)
      in
      List.map (Filename.concat dir) (List.sort compare matches)
    in
    match (trace_in, report_in, bench_in, metrics_in, workload) with
    | Some file, None, None, None, None -> (
        if Sys.file_exists file then analyze_trace_file ~label:file file
        else
          match expand_trace_prefix file with
          | [] ->
              Printf.eprintf
                "cgcsim: cannot read %s: no such file and no %s.shard*.json \
                 traces\n"
                file file;
              exit Exit_codes.schema
          | [ shard_trace ] -> analyze_trace_file ~label:shard_trace shard_trace
          | traces ->
              if json_out <> None then begin
                Printf.eprintf
                  "cgcsim: --json is not supported when --trace expands to \
                   %d shard traces\n"
                  (List.length traces);
                exit Exit_codes.usage
              end;
              List.iter
                (fun shard_trace ->
                  Printf.printf "=== %s ===\n" shard_trace;
                  analyze_trace_file ~label:shard_trace shard_trace)
                traces)
    | None, Some file, None, None, None ->
        let contents =
          try read_file file
          with Sys_error msg ->
            Printf.eprintf "cgcsim: cannot read %s: %s\n" file msg;
            exit Exit_codes.schema
        in
        let t =
          match Tails.of_report contents with
          | Ok t -> t
          | Error msg ->
              Printf.eprintf "cgcsim: %s: %s\n" file msg;
              exit Exit_codes.schema
        in
        (* Exact-span reports get the full round-trip validation,
           including the blame conservation identity. *)
        (if t.Tails.exact then
           let validate =
             if t.Tails.source = Cgc_server.Report.schema then
               Cgc_server.Report.validate
             else Cgc_cluster.Report.validate
           in
           match validate contents with
           | Ok _ -> ()
           | Error msg ->
               Printf.eprintf "cgcsim: %s: %s\n" file msg;
               exit Exit_codes.schema);
        if lbo then begin
          match Tails.lbo_of_report contents with
          | Error msg ->
              Printf.eprintf "cgcsim: %s: %s\n" file msg;
              exit Exit_codes.schema
          | Ok row ->
              print_string (Tails.lbo_text [ row ]);
              (match json_out with
              | Some out ->
                  write_or_die "LBO JSON"
                    (fun f ->
                      Export.write_file f
                        (Json.to_string ~pretty:true (Tails.lbo_json [ row ])))
                    out;
                  Printf.printf "LBO distillation written to %s\n" out
              | None -> ())
        end
        else begin
          print_string (Tails.text ~n:tails_n t);
          match json_out with
          | Some out ->
              write_or_die "tails JSON"
                (fun f ->
                  Export.write_file f
                    (Json.to_string ~pretty:true (Tails.to_json ~n:tails_n t)))
                out;
              Printf.printf "tail forensics written to %s\n" out
          | None -> ()
        end;
        if fail_on_drops && t.Tails.dropped > 0 then begin
          Printf.eprintf
            "cgcsim: %d events dropped by ring overflow across the report's \
             shards (--fail-on-drops)\n"
            t.Tails.dropped;
          exit Exit_codes.drops
        end
    | None, None, Some file, None, None ->
        if not lbo then begin
          Printf.eprintf "cgcsim: analyze --bench requires --lbo\n";
          exit Exit_codes.usage
        end;
        let contents =
          try read_file file
          with Sys_error msg ->
            Printf.eprintf "cgcsim: cannot read %s: %s\n" file msg;
            exit Exit_codes.schema
        in
        (match Tails.lbo_of_bench contents with
        | Error msg ->
            Printf.eprintf "cgcsim: %s: %s\n" file msg;
            exit Exit_codes.schema
        | Ok rows ->
            print_string (Tails.lbo_text rows);
            (match json_out with
            | Some out ->
                write_or_die "LBO JSON"
                  (fun f ->
                    Export.write_file f
                      (Json.to_string ~pretty:true (Tails.lbo_json rows)))
                  out;
                Printf.printf "LBO distillation written to %s\n" out
            | None -> ()))
    | None, None, None, Some file, None -> (
        let contents =
          try read_file file
          with Sys_error msg ->
            Printf.eprintf "cgcsim: cannot read %s: %s\n" file msg;
            exit Exit_codes.schema
        in
        match Export.parse_csv contents with
        | Error msg ->
            Printf.eprintf "cgcsim: %s: %s\n" file msg;
            exit Exit_codes.schema
        | Ok (schema, header, rows) ->
            (match schema with
            | None ->
                Printf.eprintf
                  "cgcsim: %s: no #schema= line (pre-v1 file?); known \
                   schemas: %s\n"
                  file
                  (String.concat ", " known_csv_schemas);
                exit Exit_codes.schema
            | Some s when not (List.mem s known_csv_schemas) ->
                Printf.eprintf
                  "cgcsim: %s: unsupported schema %S; known schemas: %s\n"
                  file s
                  (String.concat ", " known_csv_schemas);
                exit Exit_codes.schema
            | Some s ->
                Printf.printf "%s: schema %s, %d columns, %d rows\n" file s
                  (List.length header) (List.length rows));
            List.iter
              (fun r ->
                if List.length r <> List.length header then begin
                  Printf.eprintf
                    "cgcsim: %s: row width %d does not match header width %d\n"
                    file (List.length r) (List.length header);
                  exit Exit_codes.schema
                end)
              rows)
    | None, None, None, None, Some w ->
        let gc = { Config.default with Config.k0 = tracing_rate } in
        let vm =
          catching_failures (fun () ->
              match w with
              | "specjbb" ->
                  Cgc_workloads.Specjbb.run ~warehouses ~gc ~heap_mb ~ncpus
                    ~seed ~trace:true ~trace_ring ~ms ()
              | "pbob" ->
                  Cgc_workloads.Pbob.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                    ~trace:true ~trace_ring ~ms ()
              | "javac" ->
                  Cgc_workloads.Javac.run ~gc ~heap_mb ~ncpus ~seed ~trace:true
                    ~ms ()
              | w ->
                  Printf.eprintf "unknown workload %s (specjbb|pbob|javac)\n" w;
                  exit Exit_codes.usage)
        in
        let o = Vm.obs vm in
        finish ~label:w ~emitted:(Obs.emitted o) ~dropped:(Obs.dropped o)
          (Obs.events_array o) (Vm.cycles_per_us vm)
    | _ ->
        Printf.eprintf
          "cgcsim: analyze needs exactly one of --trace FILE, --report FILE, \
           --bench FILE, --metrics FILE or --workload NAME\n";
        exit Exit_codes.usage
  in
  let info =
    Cmd.info "analyze"
      ~doc:
        "Derive profiling metrics (MMU, load balance, pauses) from a trace \
         file, validate a metrics CSV, or run-and-analyze a workload."
  in
  Cmd.v info
    Term.(
      const exec $ trace_in $ report_in $ bench_in $ tails_n $ lbo $ metrics_in
      $ workload $ warehouses $ heap_mb $ ncpus $ ms $ tracing_rate $ seed
      $ trace_ring $ mmu_windows $ json_out $ fail_on_drops)

(* ------------------------------------------------------------------ *)
(* cgcsim serve — the open-loop request/latency subsystem.

   A deterministic server simulation: an arrival process (Poisson,
   constant-rate or bursty) feeds a bounded queue drained by worker
   mutators, with drop-newest shedding and an optional admission
   throttle.  Prints an SLO report (end-to-end latency decomposed into
   queueing / service / GC inflation) and optionally writes it as
   cgcsim-server-v1 JSON.

     cgcsim serve --rate 6000 --collector stw --heap-mb 24 --ms 2000 \
       --slo-ms 50 --json report.json

   Exit code 6: an SLO was configured (--slo-ms) and attainment fell
   below --slo-target. *)

module Server = Cgc_server.Server
module Server_report = Cgc_server.Report
module Arrival = Cgc_server.Arrival

let serve_cmd =
  let rate =
    Arg.(value & opt float 4000.0 & info [ "rate" ] ~doc:"Offered load, requests per simulated second.")
  in
  let arrival =
    let doc = "Arrival process: poisson, constant or bursty." in
    Arg.(value & opt string "poisson" & info [ "arrival" ] ~doc)
  in
  let burst =
    let doc =
      "Bursty on/off windows as $(b,ON_MS,OFF_MS,FACTOR) (rate is \
       FACTOR$(b,x) during bursts, reduced between them to preserve the \
       average).  Implies $(b,--arrival bursty)."
    in
    Arg.(value & opt (some string) None & info [ "burst" ] ~docv:"ON,OFF,X" ~doc)
  in
  let queue =
    Arg.(value & opt int 256 & info [ "queue" ] ~doc:"Request queue bound (drop-newest beyond it).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker mutator threads.")
  in
  let timeout_ms =
    Arg.(value & opt float 0.0 & info [ "timeout-ms" ] ~doc:"Queueing deadline; 0 disables.")
  in
  let slo_ms =
    Arg.(value & opt float 0.0 & info [ "slo-ms" ] ~doc:"End-to-end latency SLO; 0 disables.")
  in
  let slo_target =
    Arg.(value & opt float 0.999 & info [ "slo-target" ] ~doc:"Required SLO attainment fraction.")
  in
  let throttle =
    let doc =
      "Admission-throttle hysteresis as $(b,HI,LO) queue depths: shed at \
       the door above HI until the backlog drains to LO."
    in
    Arg.(value & opt (some string) None & info [ "throttle" ] ~docv:"HI,LO" ~doc)
  in
  let collector =
    Arg.(value & opt string "cgc" & info [ "gc"; "collector"; "c" ] ~doc:gc_doc)
  in
  let heap_mb =
    Arg.(value & opt float 24.0 & info [ "heap-mb" ] ~doc:"Simulated heap size (MB).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"Simulated CPUs.") in
  let ms =
    Arg.(value & opt float 2000.0 & info [ "ms" ] ~doc:"Simulated milliseconds measured.")
  in
  let warmup_ms =
    Arg.(value & opt float 0.0 & info [ "warmup-ms" ] ~doc:"Warm-up window discarded before measuring.")
  in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SCENARIOS" ~doc:inject_doc)
  in
  let fault_seed =
    let doc = "Seed for the fault injector (default: the run seed)." in
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~doc)
  in
  let verify =
    let doc = "Run the heap invariant verifier at every GC cycle boundary." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let trace_out =
    let doc = "Write a Chrome trace-event JSON file (arms the event sink)." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let trace_ring =
    Arg.(
      value
      & opt int (1 lsl 17)
      & info [ "trace-ring" ] ~doc:"Per-thread event-ring capacity.")
  in
  let metrics_out =
    let doc = "Write per-GC-cycle metrics to $(docv) as CSV." in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let json_out =
    let doc = "Write the $(b,cgcsim-server-v1) SLO report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let exec rate arrival burst queue workers timeout_ms slo_ms slo_target
      throttle collector heap_mb ncpus ms warmup_ms tracing_rate seed inject
      fault_seed verify trace_out trace_ring metrics_out json_out =
    let parse_floats what spec n =
      let parts = String.split_on_char ',' spec in
      match
        if List.length parts <> n then None
        else
          try Some (List.map (fun s -> float_of_string (String.trim s)) parts)
          with Failure _ -> None
      with
      | Some fs -> fs
      | None ->
          Printf.eprintf "cgcsim: bad %s %S (expected %d comma-separated numbers)\n"
            what spec n;
          exit Exit_codes.usage
    in
    let arrival_kind =
      match (burst, arrival) with
      | Some spec, _ -> (
          match parse_floats "--burst" spec 3 with
          | [ on_ms; off_ms; factor ] -> Arrival.Bursty { on_ms; off_ms; factor }
          | _ -> assert false)
      | None, "poisson" -> Arrival.Poisson
      | None, "constant" -> Arrival.Constant
      | None, "bursty" ->
          Arrival.Bursty { on_ms = 20.0; off_ms = 80.0; factor = 4.0 }
      | None, a ->
          Printf.eprintf "cgcsim: unknown arrival process %S (poisson|constant|bursty)\n" a;
          exit Exit_codes.usage
    in
    let throttle_hi, throttle_lo =
      match throttle with
      | None -> (0, 0)
      | Some spec -> (
          match parse_floats "--throttle" spec 2 with
          | [ hi; lo ] -> (int_of_float hi, int_of_float lo)
          | _ -> assert false)
    in
    let faults =
      match inject with
      | None -> Fault.disabled
      | Some spec -> (
          match parse_scenarios spec with
          | Ok scenarios ->
              let seed = match fault_seed with Some s -> s | None -> seed in
              Fault.create ~scenarios ~seed ()
          | Error msg ->
              Printf.eprintf "cgcsim: %s\n" msg;
              exit Exit_codes.usage)
    in
    let gc =
      { (gc_base collector) with Config.k0 = tracing_rate; faults; verify }
    in
    let trace = trace_out <> None in
    let scfg =
      try
        Server.cfg ~arrival:arrival_kind ~queue_cap:queue ~workers ~timeout_ms
          ~slo_ms ~slo_target ~throttle_hi ~throttle_lo ~rate_per_s:rate ()
      with Invalid_argument msg ->
        Printf.eprintf "cgcsim: %s\n" msg;
        exit Exit_codes.usage
    in
    let vm =
      Vm.create
        (Vm.config ~heap_mb ~ncpus ~seed ~gc ~trace ~trace_ring ())
    in
    let srv = Server.create scfg vm in
    catching_failures (fun () ->
        if warmup_ms > 0.0 then Vm.run_measured vm ~warmup_ms ~ms
        else Vm.run vm ~ms);
    let tot = Server.totals srv in
    print_string (Server_report.text scfg ~ran_ms:ms tot);
    (match trace_out with
    | Some file ->
        write_or_die "trace" (Vm.write_trace vm) file;
        Printf.printf "trace written to %s\n" file
    | None -> ());
    (match metrics_out with
    | Some file ->
        write_or_die "metrics" (Vm.write_metrics vm) file;
        Printf.printf "per-cycle metrics written to %s\n" file
    | None -> ());
    (match json_out with
    | Some file ->
        write_or_die "server report"
          (fun f ->
            Export.write_file f
              (Json.to_string ~pretty:true
                 (Server_report.to_json scfg ~ran_ms:ms tot)))
          file;
        Printf.printf "server report written to %s\n" file
    | None -> ());
    if Server.slo_breached srv then begin
      Printf.eprintf
        "cgcsim: SLO breach — %.1f ms attainment %.4f below target %.4f\n"
        slo_ms
        (Server.slo_attainment tot)
        slo_target;
      exit Exit_codes.slo
    end
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the deterministic open-loop request/latency simulation and \
         print its SLO report."
  in
  Cmd.v info
    Term.(
      const exec $ rate $ arrival $ burst $ queue $ workers $ timeout_ms
      $ slo_ms $ slo_target $ throttle $ collector $ heap_mb $ ncpus $ ms
      $ warmup_ms $ tracing_rate $ seed $ inject $ fault_seed $ verify
      $ trace_out $ trace_ring $ metrics_out $ json_out)

(* ------------------------------------------------------------------ *)
(* cgcsim cluster — N shard VMs behind a front-end load balancer.

   The balancer draws the fleet arrival stream once, routes every
   arrival (round-robin, least-queue-depth or consistent-hash) through
   the epoch router, and each shard incarnation — a complete VM +
   collector + server — replays its slice on the persistent domain pool
   (--jobs).  Prints the fleet SLO report and optionally writes it as
   cgcsim-cluster-v3 JSON, plus the merged fleet timeline
   (--timeline-out) as Chrome counter tracks.

     cgcsim cluster --shards 8 --policy lqd --rate 24000 --slo-ms 50 \
       --ms 3000 --jobs 8 --chaos shard-restart --json fleet.json

   Exit code 6: an SLO was configured and *fleet* attainment fell below
   --slo-target.  Exit code 7: the fleet degradation ladder bottomed
   out (--give-up unroutable requests under --chaos).  Per-shard traces
   (--trace-out PREFIX) are written as PREFIX.shard<K>.json, restarted
   incarnations as PREFIX.shard<K>.r<I>.json, each independently
   loadable in Perfetto. *)

module Balancer = Cgc_cluster.Balancer
module Cluster = Cgc_cluster.Cluster
module Cluster_report = Cgc_cluster.Report
module Dpool = Cgc_cluster.Dpool

let cluster_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Shard VM count.")
  in
  let policy =
    let doc =
      "Routing policy: round-robin (rr), least-queue (lqd) or \
       consistent-hash (hash)."
    in
    Arg.(value & opt string "round-robin" & info [ "policy" ] ~doc)
  in
  let rate =
    Arg.(value & opt float 16000.0 & info [ "rate" ] ~doc:"Fleet offered load, requests per simulated second.")
  in
  let arrival =
    let doc = "Arrival process: poisson, constant or bursty." in
    Arg.(value & opt string "poisson" & info [ "arrival" ] ~doc)
  in
  let burst =
    let doc =
      "Bursty on/off windows as $(b,ON_MS,OFF_MS,FACTOR) (implies \
       $(b,--arrival bursty))."
    in
    Arg.(value & opt (some string) None & info [ "burst" ] ~docv:"ON,OFF,X" ~doc)
  in
  let queue =
    Arg.(value & opt int 256 & info [ "queue" ] ~doc:"Per-shard request queue bound.")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker mutator threads per shard.")
  in
  let timeout_ms =
    Arg.(value & opt float 0.0 & info [ "timeout-ms" ] ~doc:"Queueing deadline; 0 disables.")
  in
  let slo_ms =
    Arg.(value & opt float 0.0 & info [ "slo-ms" ] ~doc:"End-to-end latency SLO; 0 disables.")
  in
  let slo_target =
    Arg.(value & opt float 0.999 & info [ "slo-target" ] ~doc:"Required fleet SLO attainment fraction.")
  in
  let throttle =
    let doc = "Per-shard admission-throttle hysteresis as $(b,HI,LO) queue depths." in
    Arg.(value & opt (some string) None & info [ "throttle" ] ~docv:"HI,LO" ~doc)
  in
  let service_est_ms =
    let doc =
      "The balancer's mean-service-time estimate (ms), parameterising \
       the least-queue fluid model."
    in
    Arg.(value & opt float 0.12 & info [ "service-est-ms" ] ~doc)
  in
  let bin_ms =
    Arg.(value & opt float 10.0 & info [ "bin-ms" ] ~doc:"Fleet-phenomena timeline bin width (ms).")
  in
  let collector =
    Arg.(value & opt string "cgc" & info [ "gc"; "collector"; "c" ] ~doc:gc_doc)
  in
  let heap_mb =
    Arg.(value & opt float 24.0 & info [ "heap-mb" ] ~doc:"Per-shard simulated heap size (MB).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"Per-shard simulated CPUs.") in
  let ms =
    Arg.(value & opt float 2000.0 & info [ "ms" ] ~doc:"Simulated milliseconds to run.")
  in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fleet PRNG seed (shard seeds derive from it).") in
  let jobs =
    let doc =
      "Run shards on $(docv) OCaml domains.  Host-side parallelism \
       only: per-shard traces and the fleet report are byte-identical \
       at every job count."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SCENARIOS" ~doc:inject_doc)
  in
  let fault_seed =
    let doc = "Seed for the fault injectors (default: the fleet seed)." in
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~doc)
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SCENARIO" ~doc:chaos_doc)
  in
  let chaos_seed =
    let doc = "Seed for the chaos plan (default: the fleet seed)." in
    Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~doc)
  in
  let epoch_ms =
    let doc =
      "Balancer liveness re-read interval in ms (default: one \
       $(b,--bin-ms) timeline bin)."
    in
    Arg.(value & opt (some float) None & info [ "epoch-ms" ] ~doc)
  in
  let retries =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~doc:"Per-request retry budget when a target shard is dark.")
  in
  let retry_base_ms =
    Arg.(
      value & opt float 0.25
      & info [ "retry-base-ms" ]
          ~doc:"First retry backoff in ms; doubles per attempt.")
  in
  let hedge =
    let doc =
      "Hedge to a shard whose modelled queue depth undercuts the \
       primary's by at least $(docv) requests; 0 disables."
    in
    Arg.(value & opt float 0.0 & info [ "hedge" ] ~docv:"MARGIN" ~doc)
  in
  let fleet_throttle =
    let doc =
      "Arm the fleet-wide admission throttle at or below this \
       balancer-visible live fraction."
    in
    Arg.(value & opt float 0.5 & info [ "fleet-throttle" ] ~docv:"FRAC" ~doc)
  in
  let give_up =
    let doc =
      "Unroutable requests tolerated before the typed \
       $(b,Fleet_unavailable) failure (exit code 7)."
    in
    Arg.(value & opt int 100 & info [ "give-up" ] ~docv:"N" ~doc)
  in
  let verify =
    let doc = "Run the heap invariant verifier in every shard at every GC cycle boundary." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let trace_out =
    let doc =
      "Write one Chrome trace-event JSON file per shard, named \
       $(docv).shard<K>.json (arms every shard's event sink)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PREFIX" ~doc)
  in
  let trace_ring =
    Arg.(
      value
      & opt int (1 lsl 17)
      & info [ "trace-ring" ] ~doc:"Per-thread event-ring capacity.")
  in
  let json_out =
    let doc = "Write the $(b,cgcsim-cluster-v3) fleet report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let timeline_out =
    let doc =
      "Write the merged fleet timeline (per-epoch liveness, per-bin \
       placement accounting and availability, per-shard stopped time / \
       queue depth / sheds) as $(b,cgcsim-timeline-v1) Chrome counter \
       tracks to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "timeline-out" ] ~docv:"FILE" ~doc)
  in
  let exec shards policy rate arrival burst queue workers timeout_ms slo_ms
      slo_target throttle service_est_ms bin_ms collector heap_mb ncpus ms
      tracing_rate seed jobs inject fault_seed chaos chaos_seed epoch_ms
      retries retry_base_ms hedge fleet_throttle give_up verify trace_out
      trace_ring json_out timeline_out =
    let parse_floats what spec n =
      let parts = String.split_on_char ',' spec in
      match
        if List.length parts <> n then None
        else
          try Some (List.map (fun s -> float_of_string (String.trim s)) parts)
          with Failure _ -> None
      with
      | Some fs -> fs
      | None ->
          Printf.eprintf
            "cgcsim: bad %s %S (expected %d comma-separated numbers)\n" what
            spec n;
          exit Exit_codes.usage
    in
    let policy =
      match Balancer.policy_of_name policy with
      | Some p -> p
      | None ->
          Printf.eprintf
            "cgcsim: unknown policy %S (round-robin|least-queue|consistent-hash)\n"
            policy;
          exit Exit_codes.usage
    in
    let arrival_kind =
      match (burst, arrival) with
      | Some spec, _ -> (
          match parse_floats "--burst" spec 3 with
          | [ on_ms; off_ms; factor ] -> Arrival.Bursty { on_ms; off_ms; factor }
          | _ -> assert false)
      | None, "poisson" -> Arrival.Poisson
      | None, "constant" -> Arrival.Constant
      | None, "bursty" ->
          Arrival.Bursty { on_ms = 20.0; off_ms = 80.0; factor = 4.0 }
      | None, a ->
          Printf.eprintf
            "cgcsim: unknown arrival process %S (poisson|constant|bursty)\n" a;
          exit Exit_codes.usage
    in
    let throttle_hi, throttle_lo =
      match throttle with
      | None -> (0, 0)
      | Some spec -> (
          match parse_floats "--throttle" spec 2 with
          | [ hi; lo ] -> (int_of_float hi, int_of_float lo)
          | _ -> assert false)
    in
    if jobs < 1 then begin
      Printf.eprintf "--jobs expects a positive integer, got %d\n" jobs;
      exit Exit_codes.usage
    end;
    Dpool.set_size jobs;
    let faults =
      match inject with
      | None -> Fault.disabled
      | Some spec -> (
          match parse_scenarios spec with
          | Ok scenarios ->
              let seed = match fault_seed with Some s -> s | None -> seed in
              Fault.create ~scenarios ~seed ()
          | Error msg ->
              Printf.eprintf "cgcsim: %s\n" msg;
              exit Exit_codes.usage)
    in
    let gc =
      { (gc_base collector) with Config.k0 = tracing_rate; faults; verify }
    in
    let chaos =
      match chaos with
      | None -> None
      | Some name -> (
          match Cluster_fault.of_name (String.trim name) with
          | Some sc -> Some sc
          | None ->
              Printf.eprintf
                "cgcsim: unknown chaos scenario %S (known: %s)\n" name
                (String.concat ", "
                   (List.map Cluster_fault.to_name Cluster_fault.all));
              exit Exit_codes.usage)
    in
    let chaos_seed = match chaos_seed with Some s -> s | None -> seed in
    let ccfg =
      try
        Cluster.cfg ~shards ~policy ~arrival:arrival_kind ~queue_cap:queue
          ~workers ~timeout_ms ~slo_ms ~slo_target ~throttle_hi ~throttle_lo
          ~service_est_ms ~bin_ms ~gc ~heap_mb ~ncpus ~seed ~ms
          ~trace:(trace_out <> None) ~trace_ring ?chaos ~chaos_seed ?epoch_ms
          ~retries ~retry_base_ms ~hedge_margin:hedge
          ~fleet_throttle_frac:fleet_throttle ~give_up ~rate_per_s:rate ()
      with Invalid_argument msg ->
        Printf.eprintf "cgcsim: %s\n" msg;
        exit Exit_codes.usage
    in
    let result = catching_failures (fun () -> Cluster.run ccfg) in
    print_string (Cluster_report.text result);
    (match trace_out with
    | Some prefix ->
        Array.iter
          (fun (s : Cgc_cluster.Shard.result) ->
            match s.Cgc_cluster.Shard.trace with
            | Some trace ->
                (* Incarnation 0 keeps the historical name, so chaos-free
                   campaigns produce the same files as before. *)
                let file =
                  if s.Cgc_cluster.Shard.incarnation = 0 then
                    Printf.sprintf "%s.shard%d.json" prefix
                      s.Cgc_cluster.Shard.id
                  else
                    Printf.sprintf "%s.shard%d.r%d.json" prefix
                      s.Cgc_cluster.Shard.id s.Cgc_cluster.Shard.incarnation
                in
                write_or_die "trace"
                  (fun f -> Export.write_file f trace)
                  file;
                Printf.printf "shard %d trace written to %s\n"
                  s.Cgc_cluster.Shard.id file
            | None -> ())
          result.Cluster.shards
    | None -> ());
    (match json_out with
    | Some file ->
        write_or_die "cluster report"
          (fun f ->
            Export.write_file f
              (Json.to_string ~pretty:true (Cluster_report.to_json result)))
          file;
        Printf.printf "cluster report written to %s\n" file
    | None -> ());
    (match timeline_out with
    | Some file ->
        write_or_die "fleet timeline"
          (fun f ->
            Export.write_file f (Cgc_cluster.Timeline.chrome_json result))
          file;
        Printf.printf "fleet timeline written to %s\n" file
    | None -> ());
    if Cluster.slo_breached result then begin
      Printf.eprintf
        "cgcsim: fleet SLO breach — %.1f ms attainment %.4f below target %.4f\n"
        slo_ms
        (Cluster.slo_attainment result)
        slo_target;
      exit Exit_codes.slo
    end
  in
  let info =
    Cmd.info "cluster"
      ~doc:
        "Run N shard VMs behind a front-end load balancer on the \
         persistent domain pool and print the fleet SLO report."
  in
  Cmd.v info
    Term.(
      const exec $ shards $ policy $ rate $ arrival $ burst $ queue $ workers
      $ timeout_ms $ slo_ms $ slo_target $ throttle $ service_est_ms $ bin_ms
      $ collector $ heap_mb $ ncpus $ ms $ tracing_rate $ seed $ jobs $ inject
      $ fault_seed $ chaos $ chaos_seed $ epoch_ms $ retries $ retry_base_ms
      $ hedge $ fleet_throttle $ give_up $ verify $ trace_out $ trace_ring
      $ json_out $ timeline_out)

let exit_codes_cmd =
  let markdown =
    let doc =
      "Print the GitHub-flavoured markdown table — the literal source of \
       the README's exit-code block."
    in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let exec markdown =
    print_string
      (if markdown then Exit_codes.markdown_table () else Exit_codes.text ())
  in
  let info =
    Cmd.info "exit-codes"
      ~doc:
        "Print the process exit-code table (the single source of truth the \
         README and the binary both use)."
  in
  Cmd.v info Term.(const exec $ markdown)

let experiment_cmd =
  let which =
    let doc =
      "Experiment: fig1, fig2, table1, table2, table3, table4, javac, \
       packetmem, serverlat, genlat, clusterlat, clusterchaos."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let metrics_out =
    let doc =
      "Write every per-run metrics record the experiment measured to $(docv) \
       as CSV."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let jobs =
    let doc =
      "Run the experiment's independent simulations on $(docv) OCaml \
       domains.  Host-side parallelism only: results (tables, metrics CSV) \
       are identical at every job count."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let exec which metrics_out jobs =
    let module E = Cgc_experiments in
    if jobs < 1 then begin
      Printf.eprintf "--jobs expects a positive integer, got %d\n" jobs;
      exit Exit_codes.usage
    end;
    E.Common.set_jobs jobs;
    E.Common.reset_recorded ();
    (match which with
    | "fig1" -> ignore (E.Fig1_specjbb.run ())
    | "fig2" -> ignore (E.Fig2_pbob.run ())
    | "table1" | "table2" | "table3" -> ignore (E.Tables123.run ())
    | "table4" -> ignore (E.Table4_load_balance.run ())
    | "javac" -> ignore (E.Javac_exp.run ())
    | "packetmem" -> ignore (E.Packet_memory.run ())
    | "serverlat" -> ignore (E.Server_latency.run ())
    | "genlat" -> ignore (E.Genlat.run ())
    | "clusterlat" -> ignore (E.Clusterlat.run ())
    | "clusterchaos" -> ignore (E.Clusterchaos.run ())
    | n ->
        Printf.eprintf "unknown experiment %s\n" n;
        exit Exit_codes.usage);
    match metrics_out with
    | Some file ->
        write_or_die "metrics" E.Common.write_metrics_csv file;
        Printf.printf "metrics written to %s (%d runs)\n" file
          (List.length (E.Common.recorded ()))
    | None -> ()
  in
  let info = Cmd.info "experiment" ~doc:"Run a paper-reproduction experiment." in
  Cmd.v info Term.(const exec $ which $ metrics_out $ jobs)

let () =
  let info =
    Cmd.info "cgcsim"
      ~doc:
        "Simulator of the PLDI 2002 parallel, incremental and mostly \
         concurrent garbage collector."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            serve_cmd;
            cluster_cmd;
            analyze_cmd;
            experiment_cmd;
            exit_codes_cmd;
          ]))
