(* cgcsim — command-line driver for the collector simulator.

   Run a workload under either collector with custom parameters and print
   the VM report:

     dune exec bin/cgcsim.exe -- run --workload specjbb --collector cgc \
       --warehouses 8 --heap-mb 64 --ms 4000 --tracing-rate 8

   Or run one of the paper-reproduction experiments:

     dune exec bin/cgcsim.exe -- experiment fig1 *)

open Cmdliner

module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config
module Collector = Cgc_core.Collector
module Verify = Cgc_core.Verify
module Fault = Cgc_fault.Fault

(* Parse the --inject argument: a comma-separated list of scenario names,
   or "all". *)
let parse_scenarios s =
  if s = "all" then Ok Fault.all
  else
    let names = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match Fault.of_name (String.trim n) with
          | Some sc -> go (sc :: acc) rest
          | None ->
              Error
                (Printf.sprintf
                   "unknown fault scenario %S (known: %s, or \"all\")" n
                   (String.concat ", " (List.map Fault.to_name Fault.all))))
    in
    go [] names

(* Top-level catch for the typed failure modes: a diagnosed out-of-memory
   (the degradation ladder was exhausted) and an invariant violation from
   the --verify checker both exit nonzero with the diagnostic record
   pretty-printed instead of an uncaught-exception backtrace. *)
let catching_failures f =
  try f () with
  | Collector.Out_of_memory d ->
      Printf.eprintf "cgcsim: %s\n" (Collector.oom_to_string d);
      exit 2
  | Verify.Invariant_violation msg ->
      Printf.eprintf "cgcsim: heap invariant violated: %s\n" msg;
      exit 3

(* Turn an unwritable output path into a clean CLI error instead of an
   uncaught Sys_error. *)
let write_or_die what write file =
  try write file
  with Sys_error msg ->
    Printf.eprintf "cgcsim: cannot write %s: %s\n" what msg;
    exit 1

let run_cmd =
  let workload =
    let doc = "Workload: specjbb, pbob or javac." in
    Arg.(value & opt string "specjbb" & info [ "workload"; "w" ] ~doc)
  in
  let collector =
    let doc = "Collector: cgc (mostly-concurrent) or stw (baseline)." in
    Arg.(value & opt string "cgc" & info [ "collector"; "c" ] ~doc)
  in
  let warehouses =
    Arg.(value & opt int 8 & info [ "warehouses" ] ~doc:"Warehouse count.")
  in
  let heap_mb =
    Arg.(value & opt float 64.0 & info [ "heap-mb" ] ~doc:"Simulated heap size (MB).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"Simulated CPUs.") in
  let ms =
    Arg.(value & opt float 4000.0 & info [ "ms" ] ~doc:"Simulated milliseconds to run.")
  in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0.")
  in
  let n_background =
    Arg.(value & opt int 4 & info [ "background" ] ~doc:"Background GC threads.")
  in
  let packets =
    Arg.(value & opt int 1000 & info [ "packets" ] ~doc:"Work packets in the pool.")
  in
  let lazy_sweep =
    Arg.(value & flag & info [ "lazy-sweep" ] ~doc:"Sweep outside the pause (section 7).")
  in
  let compaction =
    Arg.(value & flag & info [ "compaction" ] ~doc:"Evacuate one heap area per cycle (section 2.3).")
  in
  let card_passes =
    Arg.(value & opt int 1 & info [ "card-passes" ] ~doc:"Concurrent card-cleaning passes.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let inject =
    let doc =
      "Arm the deterministic fault injector with a comma-separated list \
       of scenarios (packet-starvation, alloc-burst, mutator-stall, \
       meter-lowball, card-storm, bg-stall) or $(b,all)."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SCENARIOS" ~doc)
  in
  let fault_seed =
    let doc = "Seed for the fault injector (default: the run seed)." in
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~doc)
  in
  let verify =
    let doc =
      "Run the heap invariant verifier at every GC cycle boundary; exit \
       nonzero on the first violation."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let trace_out =
    let doc =
      "Write a Chrome trace-event JSON file (load in Perfetto or \
       chrome://tracing).  Arms the event-tracing sink for the run."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc = "Write per-GC-cycle metrics to $(docv) as CSV." in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let exec workload collector warehouses heap_mb ncpus ms tracing_rate
      n_background packets lazy_sweep compaction card_passes seed inject
      fault_seed verify trace_out metrics_out =
    let faults =
      match inject with
      | None -> Fault.disabled
      | Some spec -> (
          match parse_scenarios spec with
          | Ok scenarios ->
              let seed =
                match fault_seed with Some s -> s | None -> seed
              in
              Fault.create ~scenarios ~seed ()
          | Error msg ->
              Printf.eprintf "cgcsim: %s\n" msg;
              exit 1)
    in
    let gc =
      {
        (if collector = "stw" then Config.stw else Config.default) with
        Config.k0 = tracing_rate;
        n_background;
        n_packets = packets;
        lazy_sweep;
        compaction;
        card_passes;
        faults;
        verify;
      }
    in
    let trace = trace_out <> None in
    let vm =
      catching_failures (fun () ->
          match workload with
          | "specjbb" ->
              Cgc_workloads.Specjbb.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                ~trace ~ms ()
          | "pbob" ->
              Cgc_workloads.Pbob.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                ~trace ~ms ()
          | "javac" ->
              Cgc_workloads.Javac.run ~gc ~heap_mb ~ncpus ~seed ~trace ~ms ()
          | w ->
              Printf.eprintf "unknown workload %s (specjbb|pbob|javac)\n" w;
              exit 1)
    in
    Vm.print_report vm;
    (match trace_out with
    | Some file ->
        write_or_die "trace" (Vm.write_trace vm) file;
        Printf.printf "trace written to %s\n" file
    | None -> ());
    match metrics_out with
    | Some file ->
        write_or_die "metrics" (Vm.write_metrics vm) file;
        Printf.printf "per-cycle metrics written to %s\n" file
    | None -> ()
  in
  let info =
    Cmd.info "run" ~doc:"Run a workload under the simulated collector."
  in
  Cmd.v info
    Term.(
      const exec $ workload $ collector $ warehouses $ heap_mb $ ncpus $ ms
      $ tracing_rate $ n_background $ packets $ lazy_sweep $ compaction
      $ card_passes $ seed $ inject $ fault_seed $ verify $ trace_out
      $ metrics_out)

(* ------------------------------------------------------------------ *)
(* cgcsim analyze — the offline profiler.

   Three sources, one output: derived metrics (MMU curves, load-balance
   quality, pause distribution, per-event attribution) as text tables
   and optionally as versioned JSON.

     cgcsim analyze --trace trace.json            # a written trace file
     cgcsim analyze --metrics runs.csv            # schema-check a CSV dump
     cgcsim analyze --workload specjbb --ms 1000  # run, then analyze live

   Exit codes: 4 = unreadable/incompatible input (schema mismatch),
   5 = the trace lost events to ring overflow and --fail-on-drops was
   given. *)

module Analysis = Cgc_prof.Analysis
module Prof_report = Cgc_prof.Report
module Json = Cgc_prof.Json
module Export = Cgc_obs.Export
module Obs = Cgc_obs.Obs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let known_csv_schemas =
  [ Vm.cycles_schema; Cgc_experiments.Common.runs_schema ]

let analyze_cmd =
  let trace_in =
    let doc = "Analyze a Chrome trace-event JSON file written by $(b,run --trace-out) (or $(b,bench))." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_in =
    let doc =
      "Validate a metrics CSV file ($(b,run --metrics-out) or \
       $(b,experiment --metrics-out)) against its $(b,#schema=) line and \
       summarise it."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let workload =
    let doc = "Run this workload with tracing armed and analyze it live (specjbb|pbob|javac)." in
    Arg.(value & opt (some string) None & info [ "workload"; "w" ] ~doc)
  in
  let warehouses =
    Arg.(value & opt int 8 & info [ "warehouses" ] ~doc:"Warehouse count (live run).")
  in
  let heap_mb =
    Arg.(value & opt float 64.0 & info [ "heap-mb" ] ~doc:"Heap size MB (live run).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"CPUs (live run).") in
  let ms = Arg.(value & opt float 1000.0 & info [ "ms" ] ~doc:"Simulated ms (live run).") in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0 (live run).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed (live run).") in
  let trace_ring =
    Arg.(
      value
      & opt int (1 lsl 17)
      & info [ "trace-ring" ] ~doc:"Per-thread event-ring capacity (live run).")
  in
  let mmu_windows =
    let doc = "Comma-separated MMU window sizes in ms (default 1,5,20,50)." in
    Arg.(value & opt (some string) None & info [ "mmu-windows" ] ~docv:"MS,MS,..." ~doc)
  in
  let json_out =
    let doc = "Also write the analysis as $(b,cgcsim-analysis-v1) JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let fail_on_drops =
    let doc =
      "Exit 5 if the analyzed trace lost any events to ring overflow — \
       derived metrics from a truncated trace are not trustworthy."
    in
    Arg.(value & flag & info [ "fail-on-drops" ] ~doc)
  in
  let exec trace_in metrics_in workload warehouses heap_mb ncpus ms
      tracing_rate seed trace_ring mmu_windows json_out fail_on_drops =
    let mmu_windows_ms =
      match mmu_windows with
      | None -> None
      | Some spec -> (
          try
            Some
              (List.map
                 (fun s -> float_of_string (String.trim s))
                 (String.split_on_char ',' spec))
          with Failure _ ->
            Printf.eprintf "cgcsim: bad --mmu-windows %S\n" spec;
            exit 1)
    in
    let finish ~label ~emitted ~dropped events cycles_per_us =
      let a = Analysis.analyse ?mmu_windows_ms ~cycles_per_us events in
      print_string (Prof_report.summary ~dropped a);
      (match json_out with
      | Some file ->
          write_or_die "analysis JSON"
            (fun f ->
              Export.write_file f
                (Json.to_string ~pretty:true
                   (Prof_report.to_json ~label ~emitted ~dropped a)))
            file;
          Printf.printf "analysis written to %s\n" file
      | None -> ());
      if fail_on_drops && dropped > 0 then begin
        Printf.eprintf
          "cgcsim: %d events dropped by ring overflow (--fail-on-drops)\n"
          dropped;
        exit 5
      end
    in
    match (trace_in, metrics_in, workload) with
    | Some file, None, None -> (
        let contents =
          try read_file file
          with Sys_error msg ->
            Printf.eprintf "cgcsim: cannot read %s: %s\n" file msg;
            exit 4
        in
        match Export.parse_chrome_json contents with
        | Error msg ->
            Printf.eprintf "cgcsim: %s: %s\n" file msg;
            exit 4
        | Ok (meta, events) ->
            finish ~label:file ~emitted:meta.Export.emitted
              ~dropped:meta.Export.dropped events meta.Export.cycles_per_us)
    | None, Some file, None -> (
        let contents =
          try read_file file
          with Sys_error msg ->
            Printf.eprintf "cgcsim: cannot read %s: %s\n" file msg;
            exit 4
        in
        match Export.parse_csv contents with
        | Error msg ->
            Printf.eprintf "cgcsim: %s: %s\n" file msg;
            exit 4
        | Ok (schema, header, rows) ->
            (match schema with
            | None ->
                Printf.eprintf
                  "cgcsim: %s: no #schema= line (pre-v1 file?); known \
                   schemas: %s\n"
                  file
                  (String.concat ", " known_csv_schemas);
                exit 4
            | Some s when not (List.mem s known_csv_schemas) ->
                Printf.eprintf
                  "cgcsim: %s: unsupported schema %S; known schemas: %s\n"
                  file s
                  (String.concat ", " known_csv_schemas);
                exit 4
            | Some s ->
                Printf.printf "%s: schema %s, %d columns, %d rows\n" file s
                  (List.length header) (List.length rows));
            List.iter
              (fun r ->
                if List.length r <> List.length header then begin
                  Printf.eprintf
                    "cgcsim: %s: row width %d does not match header width %d\n"
                    file (List.length r) (List.length header);
                  exit 4
                end)
              rows)
    | None, None, Some w ->
        let gc = { Config.default with Config.k0 = tracing_rate } in
        let vm =
          catching_failures (fun () ->
              match w with
              | "specjbb" ->
                  Cgc_workloads.Specjbb.run ~warehouses ~gc ~heap_mb ~ncpus
                    ~seed ~trace:true ~trace_ring ~ms ()
              | "pbob" ->
                  Cgc_workloads.Pbob.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                    ~trace:true ~trace_ring ~ms ()
              | "javac" ->
                  Cgc_workloads.Javac.run ~gc ~heap_mb ~ncpus ~seed ~trace:true
                    ~ms ()
              | w ->
                  Printf.eprintf "unknown workload %s (specjbb|pbob|javac)\n" w;
                  exit 1)
        in
        let o = Vm.obs vm in
        finish ~label:w ~emitted:(Obs.emitted o) ~dropped:(Obs.dropped o)
          (Obs.events o) (Vm.cycles_per_us vm)
    | _ ->
        Printf.eprintf
          "cgcsim: analyze needs exactly one of --trace FILE, --metrics FILE \
           or --workload NAME\n";
        exit 1
  in
  let info =
    Cmd.info "analyze"
      ~doc:
        "Derive profiling metrics (MMU, load balance, pauses) from a trace \
         file, validate a metrics CSV, or run-and-analyze a workload."
  in
  Cmd.v info
    Term.(
      const exec $ trace_in $ metrics_in $ workload $ warehouses $ heap_mb
      $ ncpus $ ms $ tracing_rate $ seed $ trace_ring $ mmu_windows $ json_out
      $ fail_on_drops)

let experiment_cmd =
  let which =
    let doc =
      "Experiment: fig1, fig2, table1, table2, table3, table4, javac, \
       packetmem."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let metrics_out =
    let doc =
      "Write every per-run metrics record the experiment measured to $(docv) \
       as CSV."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let jobs =
    let doc =
      "Run the experiment's independent simulations on $(docv) OCaml \
       domains.  Host-side parallelism only: results (tables, metrics CSV) \
       are identical at every job count."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let exec which metrics_out jobs =
    let module E = Cgc_experiments in
    if jobs < 1 then begin
      Printf.eprintf "--jobs expects a positive integer, got %d\n" jobs;
      exit 2
    end;
    E.Common.set_jobs jobs;
    E.Common.reset_recorded ();
    (match which with
    | "fig1" -> ignore (E.Fig1_specjbb.run ())
    | "fig2" -> ignore (E.Fig2_pbob.run ())
    | "table1" | "table2" | "table3" -> ignore (E.Tables123.run ())
    | "table4" -> ignore (E.Table4_load_balance.run ())
    | "javac" -> ignore (E.Javac_exp.run ())
    | "packetmem" -> ignore (E.Packet_memory.run ())
    | n ->
        Printf.eprintf "unknown experiment %s\n" n;
        exit 1);
    match metrics_out with
    | Some file ->
        write_or_die "metrics" E.Common.write_metrics_csv file;
        Printf.printf "metrics written to %s (%d runs)\n" file
          (List.length (E.Common.recorded ()))
    | None -> ()
  in
  let info = Cmd.info "experiment" ~doc:"Run a paper-reproduction experiment." in
  Cmd.v info Term.(const exec $ which $ metrics_out $ jobs)

let () =
  let info =
    Cmd.info "cgcsim"
      ~doc:
        "Simulator of the PLDI 2002 parallel, incremental and mostly \
         concurrent garbage collector."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; analyze_cmd; experiment_cmd ]))
