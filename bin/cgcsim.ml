(* cgcsim — command-line driver for the collector simulator.

   Run a workload under either collector with custom parameters and print
   the VM report:

     dune exec bin/cgcsim.exe -- run --workload specjbb --collector cgc \
       --warehouses 8 --heap-mb 64 --ms 4000 --tracing-rate 8

   Or run one of the paper-reproduction experiments:

     dune exec bin/cgcsim.exe -- experiment fig1 *)

open Cmdliner

module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config
module Collector = Cgc_core.Collector
module Verify = Cgc_core.Verify
module Fault = Cgc_fault.Fault

(* Parse the --inject argument: a comma-separated list of scenario names,
   or "all". *)
let parse_scenarios s =
  if s = "all" then Ok Fault.all
  else
    let names = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match Fault.of_name (String.trim n) with
          | Some sc -> go (sc :: acc) rest
          | None ->
              Error
                (Printf.sprintf
                   "unknown fault scenario %S (known: %s, or \"all\")" n
                   (String.concat ", " (List.map Fault.to_name Fault.all))))
    in
    go [] names

(* Top-level catch for the typed failure modes: a diagnosed out-of-memory
   (the degradation ladder was exhausted) and an invariant violation from
   the --verify checker both exit nonzero with the diagnostic record
   pretty-printed instead of an uncaught-exception backtrace. *)
let catching_failures f =
  try f () with
  | Collector.Out_of_memory d ->
      Printf.eprintf "cgcsim: %s\n" (Collector.oom_to_string d);
      exit 2
  | Verify.Invariant_violation msg ->
      Printf.eprintf "cgcsim: heap invariant violated: %s\n" msg;
      exit 3

(* Turn an unwritable output path into a clean CLI error instead of an
   uncaught Sys_error. *)
let write_or_die what write file =
  try write file
  with Sys_error msg ->
    Printf.eprintf "cgcsim: cannot write %s: %s\n" what msg;
    exit 1

let run_cmd =
  let workload =
    let doc = "Workload: specjbb, pbob or javac." in
    Arg.(value & opt string "specjbb" & info [ "workload"; "w" ] ~doc)
  in
  let collector =
    let doc = "Collector: cgc (mostly-concurrent) or stw (baseline)." in
    Arg.(value & opt string "cgc" & info [ "collector"; "c" ] ~doc)
  in
  let warehouses =
    Arg.(value & opt int 8 & info [ "warehouses" ] ~doc:"Warehouse count.")
  in
  let heap_mb =
    Arg.(value & opt float 64.0 & info [ "heap-mb" ] ~doc:"Simulated heap size (MB).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"Simulated CPUs.") in
  let ms =
    Arg.(value & opt float 4000.0 & info [ "ms" ] ~doc:"Simulated milliseconds to run.")
  in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0.")
  in
  let n_background =
    Arg.(value & opt int 4 & info [ "background" ] ~doc:"Background GC threads.")
  in
  let packets =
    Arg.(value & opt int 1000 & info [ "packets" ] ~doc:"Work packets in the pool.")
  in
  let lazy_sweep =
    Arg.(value & flag & info [ "lazy-sweep" ] ~doc:"Sweep outside the pause (section 7).")
  in
  let compaction =
    Arg.(value & flag & info [ "compaction" ] ~doc:"Evacuate one heap area per cycle (section 2.3).")
  in
  let card_passes =
    Arg.(value & opt int 1 & info [ "card-passes" ] ~doc:"Concurrent card-cleaning passes.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let inject =
    let doc =
      "Arm the deterministic fault injector with a comma-separated list \
       of scenarios (packet-starvation, alloc-burst, mutator-stall, \
       meter-lowball, card-storm, bg-stall) or $(b,all)."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SCENARIOS" ~doc)
  in
  let fault_seed =
    let doc = "Seed for the fault injector (default: the run seed)." in
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~doc)
  in
  let verify =
    let doc =
      "Run the heap invariant verifier at every GC cycle boundary; exit \
       nonzero on the first violation."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let trace_out =
    let doc =
      "Write a Chrome trace-event JSON file (load in Perfetto or \
       chrome://tracing).  Arms the event-tracing sink for the run."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc = "Write per-GC-cycle metrics to $(docv) as CSV." in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let exec workload collector warehouses heap_mb ncpus ms tracing_rate
      n_background packets lazy_sweep compaction card_passes seed inject
      fault_seed verify trace_out metrics_out =
    let faults =
      match inject with
      | None -> Fault.disabled
      | Some spec -> (
          match parse_scenarios spec with
          | Ok scenarios ->
              let seed =
                match fault_seed with Some s -> s | None -> seed
              in
              Fault.create ~scenarios ~seed ()
          | Error msg ->
              Printf.eprintf "cgcsim: %s\n" msg;
              exit 1)
    in
    let gc =
      {
        (if collector = "stw" then Config.stw else Config.default) with
        Config.k0 = tracing_rate;
        n_background;
        n_packets = packets;
        lazy_sweep;
        compaction;
        card_passes;
        faults;
        verify;
      }
    in
    let trace = trace_out <> None in
    let vm =
      catching_failures (fun () ->
          match workload with
          | "specjbb" ->
              Cgc_workloads.Specjbb.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                ~trace ~ms ()
          | "pbob" ->
              Cgc_workloads.Pbob.run ~warehouses ~gc ~heap_mb ~ncpus ~seed
                ~trace ~ms ()
          | "javac" ->
              Cgc_workloads.Javac.run ~gc ~heap_mb ~ncpus ~seed ~trace ~ms ()
          | w ->
              Printf.eprintf "unknown workload %s (specjbb|pbob|javac)\n" w;
              exit 1)
    in
    Vm.print_report vm;
    (match trace_out with
    | Some file ->
        write_or_die "trace" (Vm.write_trace vm) file;
        Printf.printf "trace written to %s\n" file
    | None -> ());
    match metrics_out with
    | Some file ->
        write_or_die "metrics" (Vm.write_metrics vm) file;
        Printf.printf "per-cycle metrics written to %s\n" file
    | None -> ()
  in
  let info =
    Cmd.info "run" ~doc:"Run a workload under the simulated collector."
  in
  Cmd.v info
    Term.(
      const exec $ workload $ collector $ warehouses $ heap_mb $ ncpus $ ms
      $ tracing_rate $ n_background $ packets $ lazy_sweep $ compaction
      $ card_passes $ seed $ inject $ fault_seed $ verify $ trace_out
      $ metrics_out)

let experiment_cmd =
  let which =
    let doc =
      "Experiment: fig1, fig2, table1, table2, table3, table4, javac, \
       packetmem."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let metrics_out =
    let doc =
      "Write every per-run metrics record the experiment measured to $(docv) \
       as CSV."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let exec which metrics_out =
    let module E = Cgc_experiments in
    E.Common.reset_recorded ();
    (match which with
    | "fig1" -> ignore (E.Fig1_specjbb.run ())
    | "fig2" -> ignore (E.Fig2_pbob.run ())
    | "table1" | "table2" | "table3" -> ignore (E.Tables123.run ())
    | "table4" -> ignore (E.Table4_load_balance.run ())
    | "javac" -> ignore (E.Javac_exp.run ())
    | "packetmem" -> ignore (E.Packet_memory.run ())
    | n ->
        Printf.eprintf "unknown experiment %s\n" n;
        exit 1);
    match metrics_out with
    | Some file ->
        write_or_die "metrics" E.Common.write_metrics_csv file;
        Printf.printf "metrics written to %s (%d runs)\n" file
          (List.length (E.Common.recorded ()))
    | None -> ()
  in
  let info = Cmd.info "experiment" ~doc:"Run a paper-reproduction experiment." in
  Cmd.v info Term.(const exec $ which $ metrics_out)

let () =
  let info =
    Cmd.info "cgcsim"
      ~doc:
        "Simulator of the PLDI 2002 parallel, incremental and mostly \
         concurrent garbage collector."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; experiment_cmd ]))
